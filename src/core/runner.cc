#include "core/runner.hh"

#include "support/logging.hh"
#include "support/threadpool.hh"
#include "video/composite.hh"
#include "video/quality.hh"
#include "video/scene.hh"

namespace m4ps::core
{

SceneFeeder::SceneFeeder(memsim::SimContext &ctx, const Workload &w)
    : gen_(w.width, w.height, w.numVos - 1, w.seed),
      scene_(ctx, w.width, w.height)
{
    for (int o = 0; o + 1 < w.numVos; ++o) {
        objFrames_.emplace_back(ctx, w.width, w.height);
        objAlphas_.emplace_back(ctx, w.width, w.height);
    }
}

std::vector<codec::VoInput>
SceneFeeder::inputs(int t)
{
    std::vector<codec::VoInput> in;
    if (objFrames_.empty()) {
        // Single rectangular VO: the full composited scene.
        gen_.renderFrame(t, scene_);
        in.push_back({&scene_, nullptr});
    } else {
        // VO 0 is the background; the rest are shaped objects.
        gen_.renderBackground(t, scene_);
        in.push_back({&scene_, nullptr});
        for (size_t o = 0; o < objFrames_.size(); ++o) {
            gen_.renderObject(t, static_cast<int>(o),
                              objFrames_[o], objAlphas_[o]);
            in.push_back({&objFrames_[o], &objAlphas_[o]});
        }
    }
    return in;
}

namespace
{

std::vector<uint8_t>
encodeImpl(memsim::SimContext &ctx, const Workload &w,
           codec::EncoderStats *stats_out)
{
    SceneFeeder feeder(ctx, w);
    codec::Mpeg4Encoder enc(ctx, w.encoderConfig());
    for (int t = 0; t < w.frames; ++t)
        enc.encodeFrame(feeder.inputs(t), t);
    std::vector<uint8_t> stream = enc.finish();
    if (stats_out)
        *stats_out = enc.stats();
    return stream;
}

/** Reassembles per-VO display frames into composited scenes. */
class CompositeAssembler
{
  public:
    CompositeAssembler(memsim::SimContext &vctx, const Workload &w)
        : w_(w), gen_(w.width, w.height, w.numVos - 1, w.seed),
          source_(vctx, w.width, w.height)
    {
        for (int i = 0; i < kSlots; ++i) {
            slots_.emplace_back(vctx, w.width, w.height);
            slotTs_[i] = -1;
            received_[i] = 0;
        }
    }

    void
    onEvent(const codec::DecodedEvent &e)
    {
        int slot = -1;
        for (int i = 0; i < kSlots; ++i) {
            if (slotTs_[i] == e.timestamp) {
                slot = i;
                break;
            }
        }
        if (slot < 0) {
            for (int i = 0; i < kSlots; ++i) {
                if (slotTs_[i] < 0) {
                    slot = i;
                    break;
                }
            }
            if (slot < 0) {
                // Lossy decodes can leave frames forever incomplete
                // (a VO's VOP was concealed away): evict the oldest
                // pending timestamp rather than aborting the run.
                slot = 0;
                for (int i = 1; i < kSlots; ++i) {
                    if (slotTs_[i] < slotTs_[slot])
                        slot = i;
                }
            }
            slotTs_[slot] = e.timestamp;
            received_[slot] = 0;
        }
        video::compositeOver(slots_[slot], *e.frame, e.alpha);
        if (++received_[slot] == w_.numVos)
            finalize(slot);
    }

    double meanPsnrY() const
    {
        return frames_ ? psnrSum_ / frames_ : 0;
    }

    int frames() const { return frames_; }

  private:
    void
    finalize(int slot)
    {
        gen_.renderFrame(slotTs_[slot], source_);
        psnrSum_ += video::psnrY(source_, slots_[slot]);
        ++frames_;
        slotTs_[slot] = -1;
        received_[slot] = 0;
    }

    static constexpr int kSlots = 8;
    Workload w_;
    video::SceneGenerator gen_;
    video::Yuv420Image source_;
    std::vector<video::Yuv420Image> slots_;
    int slotTs_[kSlots];
    int received_[kSlots];
    double psnrSum_ = 0;
    int frames_ = 0;
};

} // namespace

RunResult
ExperimentRunner::runEncode(const Workload &w,
                            const MachineConfig &machine,
                            std::vector<uint8_t> *stream_out)
{
    w.validate();
    auto mem = machine.makeHierarchy();
    memsim::SimContext ctx(mem.get());

    codec::EncoderStats stats;
    perfctr::PerfRegion perf("perf", "runEncode");
    std::vector<uint8_t> stream = encodeImpl(ctx, w, &stats);
    const perfctr::Counts hw = perf.stop();

    RunResult r;
    r.workload = w.name;
    r.machine = machine.label();
    r.whole = MemoryReport::from(mem->counters(), machine);
    for (const auto &[name, ctrs] : mem->profiler().regions())
        r.regions[name] = MemoryReport::from(ctrs, machine);
    r.enc = stats;
    r.streamBytes = stream.size();
    r.residentBytes = ctx.residentBytes();
    r.modelledSeconds = r.whole.seconds;
    r.threads = support::ThreadPool::global().threads();
    if (perfctr::enabled()) {
        r.hasHw = true;
        r.hw = hw;
        r.perfBackend = perfctr::activeBackend();
    }
    if (stream_out)
        *stream_out = std::move(stream);
    return r;
}

RunResult
ExperimentRunner::runDecode(const Workload &w,
                            const MachineConfig &machine,
                            const std::vector<uint8_t> &stream,
                            const codec::DecodeOptions &opts)
{
    w.validate();
    auto mem = machine.makeHierarchy();
    memsim::SimContext ctx(mem.get());
    memsim::SimContext verify_ctx; // untraced

    CompositeAssembler assembler(verify_ctx, w);
    codec::Mpeg4Decoder dec(ctx);
    perfctr::PerfRegion perf("perf", "runDecode");
    codec::DecodeStats stats = dec.decode(
        stream,
        [&](const codec::DecodedEvent &e) { assembler.onEvent(e); },
        opts);
    const perfctr::Counts hw = perf.stop();

    RunResult r;
    r.workload = w.name;
    r.machine = machine.label();
    r.whole = MemoryReport::from(mem->counters(), machine);
    for (const auto &[name, ctrs] : mem->profiler().regions())
        r.regions[name] = MemoryReport::from(ctrs, machine);
    r.dec = stats;
    r.meanPsnrY = assembler.meanPsnrY();
    r.displayedFrames = assembler.frames();
    r.streamBytes = stream.size();
    r.residentBytes = ctx.residentBytes();
    r.modelledSeconds = r.whole.seconds;
    r.threads = support::ThreadPool::global().threads();
    if (perfctr::enabled()) {
        r.hasHw = true;
        r.hw = hw;
        r.perfBackend = perfctr::activeBackend();
    }
    return r;
}

std::vector<uint8_t>
ExperimentRunner::encodeUntraced(const Workload &w)
{
    w.validate();
    memsim::SimContext ctx;
    return encodeImpl(ctx, w, nullptr);
}

std::vector<uint8_t>
ExperimentRunner::encodeWith(memsim::SimContext &ctx, const Workload &w,
                             codec::EncoderStats *stats_out)
{
    w.validate();
    return encodeImpl(ctx, w, stats_out);
}

} // namespace m4ps::core
