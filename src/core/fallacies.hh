/**
 * @file
 * The paper's five fallacies as testable predicates.
 *
 * §1 lists the assumptions the paper refutes.  These helpers encode
 * the quantitative form each refutation takes in §3.2, so that the
 * test suite and the benchmark harness can assert that the
 * reproduction exhibits the same qualitative behaviour.
 */

#ifndef M4PS_CORE_FALLACIES_HH
#define M4PS_CORE_FALLACIES_HH

#include <string>

#include "core/report.hh"

namespace m4ps::core
{

/** Verdicts over one run; every field should be true for MPEG-4. */
struct FallacyVerdicts
{
    /**
     * Refutes "MPEG-4 exhibits streaming references": primary cache
     * performance is nearly optimal (hit rate >= 99%, hundreds of
     * uses per line).
     */
    bool cacheFriendly = false;

    /**
     * Refutes "MPEG-4 is bound by DRAM latency": processor stall
     * time on DRAM stays a small fraction (paper worst case 12%).
     */
    bool notLatencyBound = false;

    /**
     * Refutes "MPEG-4 is hungry for bus bandwidth": consumed
     * L2-DRAM bandwidth is a small fraction of the sustained bus
     * bandwidth (paper: < 4%).
     */
    bool notBandwidthBound = false;

    /**
     * "Over half of the prefetches hit the primary cache, and thus
     * constitute a waste of system resources."  True when prefetch
     * usefulness is low (or the counter is unavailable).
     */
    bool prefetchMostlyWasted = false;

    bool all() const
    {
        return cacheFriendly && notLatencyBound && notBandwidthBound &&
               prefetchMostlyWasted;
    }

    std::string str() const;
};

/** Evaluate the fallacy refutations over one report. */
FallacyVerdicts judge(const MemoryReport &report,
                      const MachineConfig &machine);

/**
 * Refutes "memory performance degrades with image size": the larger
 * image's L2 miss rate and DRAM stall must not be significantly
 * worse (tolerance @p slack, relative).
 */
bool sizeScalingHolds(const MemoryReport &small,
                      const MemoryReport &large, double slack = 0.25);

/**
 * Refutes "memory performance degrades with more VOs/VOLs": same
 * comparison between the 1-VO and multi-VO reports.
 */
bool objectScalingHolds(const MemoryReport &single,
                        const MemoryReport &multi, double slack = 0.25);

} // namespace m4ps::core

#endif // M4PS_CORE_FALLACIES_HH
