#include "core/benchdiff.hh"

#include <cmath>
#include <sstream>

namespace m4ps::core
{

using support::JsonValue;

bool
isTimingMetric(const std::string &name)
{
    static const char *const kMarkers[] = {
        "_ns",  "_us",      "_ms",   "seconds",  "wall",
        "cycle", "overhead", "per_sec", "shed", "occupancy"};
    for (const char *m : kMarkers) {
        if (name.find(m) != std::string::npos)
            return true;
    }
    return false;
}

std::string
BenchFinding::str() const
{
    std::ostringstream os;
    switch (kind) {
    case Kind::MissingBench:
        os << "MISSING bench \"" << bench << "\"";
        return os.str();
    case Kind::MissingMetric:
        os << "MISSING " << bench << "/" << metric << " (baseline "
           << baseline << ")";
        return os.str();
    case Kind::HardDrift:
        os << "HARD    ";
        break;
    case Kind::SoftDrift:
        os << "soft    ";
        break;
    }
    os << bench << "/" << metric << ": baseline " << baseline
       << " -> current " << current << " (rel diff " << relDiff
       << ", tolerance " << tolerance << ")";
    return os.str();
}

bool
BenchDiffResult::hardRegression() const
{
    for (const BenchFinding &f : findings) {
        if (f.hard())
            return true;
    }
    return false;
}

namespace
{

const JsonValue &
benchesOf(const JsonValue &doc, const char *which)
{
    const JsonValue *b = doc.find("benches");
    if (!b || !b->isArray())
        throw support::JsonError(std::string(which) +
                                 " document has no \"benches\" array "
                                 "(expected schema m4ps-bench-v1)");
    return *b;
}

const JsonValue *
findBench(const JsonValue &benches, const std::string &name)
{
    for (const JsonValue &b : benches.array) {
        if (b.stringOr("bench", "") == name)
            return &b;
    }
    return nullptr;
}

} // namespace

BenchDiffResult
diffBenchDocs(const JsonValue &baseline, const JsonValue &current,
              const BenchDiffOptions &opts)
{
    const JsonValue &base = benchesOf(baseline, "baseline");
    const JsonValue &cur = benchesOf(current, "current");

    BenchDiffResult res;
    for (const JsonValue &bb : base.array) {
        const std::string name = bb.stringOr("bench", "");
        const JsonValue *cb = findBench(cur, name);
        if (!cb) {
            BenchFinding f;
            f.kind = BenchFinding::Kind::MissingBench;
            f.bench = name;
            res.findings.push_back(std::move(f));
            continue;
        }
        ++res.benchesCompared;

        const JsonValue *bm = bb.find("metrics");
        const JsonValue *cm = cb->find("metrics");
        if (!bm || !bm->isObject())
            continue;
        for (const auto &[metric, bval] : bm->object) {
            if (!bval.isNumber())
                continue; // strings/bools compare only as numbers
            const JsonValue *cval =
                cm && cm->isObject() ? cm->find(metric) : nullptr;
            const bool timing = isTimingMetric(metric);
            if (!cval || !cval->isNumber()) {
                if (timing)
                    continue; // a dropped timing is not a regression
                BenchFinding f;
                f.kind = BenchFinding::Kind::MissingMetric;
                f.bench = name;
                f.metric = metric;
                f.baseline = bval.number;
                res.findings.push_back(std::move(f));
                continue;
            }
            ++res.metricsCompared;

            const double tol = timing ? opts.timingTolerance
                                      : opts.counterTolerance;
            const double b = bval.number;
            const double c = cval->number;
            if (std::isnan(b) && std::isnan(c))
                continue;
            const double denom = std::max(std::fabs(b), 1e-12);
            const double rel = std::fabs(c - b) / denom;
            if (rel <= tol)
                continue;
            BenchFinding f;
            f.kind = timing ? BenchFinding::Kind::SoftDrift
                            : BenchFinding::Kind::HardDrift;
            f.bench = name;
            f.metric = metric;
            f.baseline = b;
            f.current = c;
            f.relDiff = rel;
            f.tolerance = tol;
            res.findings.push_back(std::move(f));
        }
    }
    return res;
}

} // namespace m4ps::core
