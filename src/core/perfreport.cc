#include "core/perfreport.hh"

#include <cmath>
#include <ostream>

#include "support/table.hh"

namespace m4ps::core
{

using support::JsonValue;

Divergence
crossValidate(const MemoryReport &sim, const perfctr::Counts &hw,
              double tolerance)
{
    Divergence d;
    d.simL1MissRate = sim.l1MissRate;
    d.simL2MissRate = sim.l2MissRate;
    d.hwL1MissRatio = hw.l1MissRatio();
    d.hwLlcMissRatio = hw.llcMissRatio();
    if (d.hwL1MissRatio < 0 || d.hwLlcMissRatio < 0)
        return d; // software backend or missing events: no verdict
    d.comparable = true;
    auto rel = [](double hwv, double simv) {
        const double base = std::max(std::fabs(simv), 1e-9);
        return std::fabs(hwv - simv) / base;
    };
    d.l1RelDiff = rel(d.hwL1MissRatio, d.simL1MissRate);
    d.llcRelDiff = rel(d.hwLlcMissRatio, d.simL2MissRate);
    d.diverged = d.l1RelDiff > tolerance || d.llcRelDiff > tolerance;
    return d;
}

JsonValue
memoryReportJson(const MemoryReport &r)
{
    JsonValue v = JsonValue::makeObject();
    v.add("seconds", JsonValue::of(r.seconds));
    v.add("l1_miss_rate", JsonValue::of(r.l1MissRate));
    v.add("l1_miss_time", JsonValue::of(r.l1MissTime));
    v.add("l1_line_reuse", JsonValue::of(r.l1LineReuse));
    v.add("l2_miss_rate", JsonValue::of(r.l2MissRate));
    v.add("l2_line_reuse", JsonValue::of(r.l2LineReuse));
    v.add("dram_time", JsonValue::of(r.dramTime));
    v.add("l1_l2_bw_mbs", JsonValue::of(r.l1l2BwMBs));
    v.add("l2_dram_bw_mbs", JsonValue::of(r.l2DramBwMBs));
    v.add("prefetch_l1_miss", JsonValue::of(r.prefetchL1Miss));
    return v;
}

JsonValue
verdictsJson(const FallacyVerdicts &v)
{
    JsonValue o = JsonValue::makeObject();
    o.add("cache_friendly", JsonValue::of(v.cacheFriendly));
    o.add("not_latency_bound", JsonValue::of(v.notLatencyBound));
    o.add("not_bandwidth_bound", JsonValue::of(v.notBandwidthBound));
    o.add("prefetch_mostly_wasted",
          JsonValue::of(v.prefetchMostlyWasted));
    return o;
}

JsonValue
hwJson(const perfctr::Counts &c, perfctr::Backend backend)
{
    JsonValue o = JsonValue::makeObject();
    o.add("backend", JsonValue::of(perfctr::backendName(backend)));
    JsonValue counts = JsonValue::makeObject();
    for (int i = 0; i < perfctr::kEventCount; ++i) {
        if (c.valid[i])
            counts.add(perfctr::eventName(i),
                       JsonValue::of(c.count[i]));
    }
    o.add("counts", std::move(counts));
    o.add("time_enabled_ns", JsonValue::of(c.enabledNs));
    o.add("time_running_ns", JsonValue::of(c.runningNs));
    o.add("multiplexed", JsonValue::of(c.multiplexed()));
    return o;
}

bool
hwFromJson(const JsonValue &v, perfctr::Counts *out,
           perfctr::Backend *backend)
{
    if (!v.isObject())
        return false;
    const JsonValue *counts = v.find("counts");
    if (!counts || !counts->isObject())
        return false;
    *out = perfctr::Counts{};
    for (int i = 0; i < perfctr::kEventCount; ++i) {
        const JsonValue *c = counts->find(perfctr::eventName(i));
        if (c && c->isNumber()) {
            out->valid[i] = true;
            out->count[i] = c->number;
        }
    }
    out->enabledNs =
        static_cast<uint64_t>(v.numberOr("time_enabled_ns", 0));
    out->runningNs =
        static_cast<uint64_t>(v.numberOr("time_running_ns", 0));
    *backend = v.stringOr("backend", "software") == "hardware"
                   ? perfctr::Backend::Hardware
                   : perfctr::Backend::Software;
    return true;
}

namespace
{

JsonValue
divergenceJson(const Divergence &d)
{
    JsonValue o = JsonValue::makeObject();
    o.add("comparable", JsonValue::of(d.comparable));
    o.add("sim_l1_miss_rate", JsonValue::of(d.simL1MissRate));
    o.add("hw_l1_miss_ratio", JsonValue::of(d.hwL1MissRatio));
    o.add("sim_l2_miss_rate", JsonValue::of(d.simL2MissRate));
    o.add("hw_llc_miss_ratio", JsonValue::of(d.hwLlcMissRatio));
    o.add("l1_rel_diff", JsonValue::of(d.l1RelDiff));
    o.add("llc_rel_diff", JsonValue::of(d.llcRelDiff));
    o.add("diverged", JsonValue::of(d.diverged));
    return o;
}

JsonValue
fecJson(const ReportFec &f)
{
    JsonValue o = JsonValue::makeObject();
    o.add("blocks", JsonValue::of(static_cast<uint64_t>(f.blocks)));
    o.add("blocks_corrected",
          JsonValue::of(static_cast<uint64_t>(f.blocksCorrected)));
    o.add("blocks_uncorrectable",
          JsonValue::of(static_cast<uint64_t>(f.blocksUncorrectable)));
    o.add("framing_errors",
          JsonValue::of(static_cast<uint64_t>(f.framingErrors)));
    o.add("corrected_bits",
          JsonValue::of(static_cast<uint64_t>(f.correctedBits)));
    return o;
}

ReportFec
fecFromJson(const JsonValue &v)
{
    ReportFec f;
    f.present = true;
    f.blocks = static_cast<uint64_t>(v.numberOr("blocks", 0));
    f.blocksCorrected =
        static_cast<uint64_t>(v.numberOr("blocks_corrected", 0));
    f.blocksUncorrectable =
        static_cast<uint64_t>(v.numberOr("blocks_uncorrectable", 0));
    f.framingErrors =
        static_cast<uint64_t>(v.numberOr("framing_errors", 0));
    f.correctedBits =
        static_cast<uint64_t>(v.numberOr("corrected_bits", 0));
    return f;
}

/** Scaling verdict across the document (first run vs last run). */
JsonValue
scalingJson(const std::vector<ReportRun> &runs)
{
    JsonValue o = JsonValue::makeObject();
    const bool available = runs.size() >= 2;
    o.add("available", JsonValue::of(available));
    if (!available)
        return o;
    const MemoryReport first =
        MemoryReport::from(runs.front().ctrs, runs.front().machine);
    const MemoryReport last =
        MemoryReport::from(runs.back().ctrs, runs.back().machine);
    o.add("from", JsonValue::of(runs.front().label));
    o.add("to", JsonValue::of(runs.back().label));
    o.add("holds", JsonValue::of(sizeScalingHolds(first, last)));
    return o;
}

} // namespace

JsonValue
buildCounterReport(const std::vector<ReportRun> &runs,
                   double divergenceTolerance)
{
    JsonValue doc = JsonValue::makeObject();
    doc.add("schema", JsonValue::of("m4ps-report-v1"));
    doc.add("divergence_tolerance",
            JsonValue::of(divergenceTolerance));
    JsonValue arr = JsonValue::makeArray();
    for (const ReportRun &run : runs) {
        const MemoryReport rep =
            MemoryReport::from(run.ctrs, run.machine);
        JsonValue o = JsonValue::makeObject();
        o.add("label", JsonValue::of(run.label));
        o.add("machine_preset", JsonValue::of(run.preset));
        o.add("machine", JsonValue::of(run.machine.label()));
        if (run.preset == "custom")
            o.add("l2_bytes",
                  JsonValue::of(run.machine.l2.sizeBytes));
        o.add("counters", run.ctrs.toJson());
        o.add("derived", memoryReportJson(rep));
        o.add("verdicts", verdictsJson(judge(rep, run.machine)));
        if (run.hasHw) {
            o.add("hw", hwJson(run.hw, run.hwBackend));
            o.add("divergence",
                  divergenceJson(crossValidate(rep, run.hw,
                                               divergenceTolerance)));
        }
        if (run.fec.present)
            o.add("fec", fecJson(run.fec));
        arr.array.push_back(std::move(o));
    }
    doc.add("runs", std::move(arr));
    doc.add("scaling", scalingJson(runs));
    return doc;
}

std::vector<ReportRun>
parseReportRuns(const JsonValue &doc)
{
    const JsonValue *runs = doc.find("runs");
    if (!runs || !runs->isArray())
        throw support::JsonError(
            "document has no \"runs\" array (expected schema "
            "m4ps-report-v1)");
    std::vector<ReportRun> out;
    for (const JsonValue &r : runs->array) {
        ReportRun run;
        run.label = r.stringOr("label", "run");
        run.preset = r.stringOr("machine_preset", "o2");
        if (run.preset == "custom") {
            run.machine = customL2Machine(static_cast<uint64_t>(
                r.numberOr("l2_bytes", 1024.0 * 1024.0)));
        } else {
            run.machine = machineByName(run.preset);
        }
        const JsonValue *ctrs = r.find("counters");
        if (!ctrs || !ctrs->isObject())
            throw support::JsonError("run \"" + run.label +
                                     "\" has no counters object");
        run.ctrs = memsim::CounterSet::fromJson(*ctrs);
        if (const JsonValue *hw = r.find("hw"))
            run.hasHw = hwFromJson(*hw, &run.hw, &run.hwBackend);
        if (const JsonValue *fec = r.find("fec"))
            run.fec = fecFromJson(*fec);
        out.push_back(std::move(run));
    }
    return out;
}

void
printCounterReport(std::ostream &os,
                   const std::vector<ReportRun> &runs,
                   double divergenceTolerance)
{
    std::vector<std::string> labels;
    std::vector<MemoryReport> columns;
    for (const ReportRun &run : runs) {
        labels.push_back(run.label + " " + run.machine.label());
        columns.push_back(MemoryReport::from(run.ctrs, run.machine));
    }
    TextTable table("Counter report (paper metric definitions)");
    std::vector<std::string> header{"metrics"};
    header.insert(header.end(), labels.begin(), labels.end());
    table.header(std::move(header));
    if (!columns.empty()) {
        const auto first = columns.front().rows();
        for (size_t m = 0; m < first.size(); ++m) {
            std::vector<std::string> cells{first[m].first};
            for (const MemoryReport &col : columns)
                cells.push_back(col.rows()[m].second);
            table.row(std::move(cells));
        }
    }
    os << table.str();

    os << "\nVerdicts (the paper's conventional-wisdom refutations):\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        os << "  " << labels[i] << ": "
           << judge(columns[i], runs[i].machine).str() << "\n";
    }
    if (runs.size() >= 2) {
        const bool holds = sizeScalingHolds(columns.front(),
                                            columns.back());
        os << "  scaling " << runs.front().label << " -> "
           << runs.back().label << ": "
           << (holds ? "no degradation" : "DEGRADES") << "\n";
    }

    for (size_t i = 0; i < runs.size(); ++i) {
        if (!runs[i].hasHw)
            continue;
        const ReportRun &run = runs[i];
        os << "\nHardware counters for " << labels[i] << " (backend "
           << perfctr::backendName(run.hwBackend) << ")\n";
        for (int e = 0; e < perfctr::kEventCount; ++e) {
            if (!run.hw.valid[e])
                continue;
            os << "  " << perfctr::eventName(e) << ": "
               << TextTable::num(run.hw.count[e], 0) << "\n";
        }
        const Divergence d =
            crossValidate(columns[i], run.hw, divergenceTolerance);
        if (!d.comparable) {
            os << "  divergence: n/a (miss ratios unavailable on "
                  "this backend)\n";
            continue;
        }
        os << "  L1 miss: hw " << TextTable::pct(d.hwL1MissRatio)
           << " vs sim " << TextTable::pct(d.simL1MissRate)
           << " (rel diff " << TextTable::num(d.l1RelDiff, 2)
           << ")\n";
        os << "  LLC miss: hw " << TextTable::pct(d.hwLlcMissRatio)
           << " vs sim " << TextTable::pct(d.simL2MissRate)
           << " (rel diff " << TextTable::num(d.llcRelDiff, 2)
           << ")\n";
        os << "  divergence verdict: "
           << (d.diverged ? "DIVERGED (beyond tolerance "
                          : "within tolerance ")
           << TextTable::num(divergenceTolerance, 2)
           << (d.diverged ? ")" : "") << "\n";
    }

    // FEC stage: how channel damage split between the Viterbi
    // repair (invisible to the decoder) and the codec's concealment
    // (uncorrectable blocks fell through) - docs/FEC.md.
    for (size_t i = 0; i < runs.size(); ++i) {
        const ReportFec &f = runs[i].fec;
        if (!f.present)
            continue;
        os << "\nFEC stage for " << labels[i] << "\n";
        os << "  blocks: " << f.blocks << " (" << f.blocksCorrected
           << " corrected, " << f.blocksUncorrectable
           << " uncorrectable, " << f.framingErrors
           << " framing error(s))\n";
        os << "  wire bits repaired before the decoder: "
           << f.correctedBits << "\n";
        if (f.blocks > 0) {
            os << "  channel-vs-codec split: "
               << (f.blocksUncorrectable == 0 && f.framingErrors == 0
                       ? "all channel damage repaired at the FEC "
                         "stage"
                       : std::to_string(f.blocksUncorrectable +
                                        f.framingErrors) +
                             " block(s) fell through to "
                             "concealment")
               << "\n";
        }
    }
    os.flush();
}

} // namespace m4ps::core
