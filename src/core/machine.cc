#include "core/machine.hh"

#include <sstream>
#include <stdexcept>

namespace m4ps::core
{

std::string
MachineConfig::label() const
{
    std::ostringstream os;
    os << cpu << "/";
    const uint64_t mb = l2.sizeBytes / (1024 * 1024);
    if (mb >= 1)
        os << mb << "MB";
    else
        os << l2.sizeBytes / 1024 << "KB";
    return os.str();
}

std::unique_ptr<memsim::MemoryHierarchy>
MachineConfig::makeHierarchy() const
{
    return std::make_unique<memsim::MemoryHierarchy>(l1, l2, cost);
}

namespace
{

MachineConfig
baseR12k()
{
    MachineConfig m;
    m.cpu = "R12K";
    m.cost.clockMhz = 300.0;
    m.cost.cyclesPerAccess = 2.5;
    m.cost.l2HitLatency = 12.0;
    m.cost.dramLatency = 180.0;  // ~600 ns at 300 MHz
    m.cost.l2Exposure = 0.35;
    m.cost.dramExposure = 0.65;
    m.prefetchHitCounter = true;
    return m;
}

} // namespace

MachineConfig
o2R12k1MB()
{
    MachineConfig m = baseR12k();
    m.name = "O2";
    m.l2 = {1024 * 1024, 2, 128};
    // The O2's unified-memory design has the slowest DRAM path of
    // the three machines.
    m.cost.dramLatency = 280.0;  // ~930 ns at 300 MHz
    m.cost.dramExposure = 0.75;
    return m;
}

MachineConfig
onyxR10k2MB()
{
    MachineConfig m;
    m.name = "Onyx VTX";
    m.cpu = "R10K";
    m.l2 = {2 * 1024 * 1024, 2, 128};
    m.cost.clockMhz = 195.0;
    m.cost.cyclesPerAccess = 2.7; // shallower pipe, lower sustained IPC
    m.cost.l2HitLatency = 10.0;
    m.cost.dramLatency = 125.0;  // ~640 ns at 195 MHz
    m.cost.l2Exposure = 0.40;    // older core hides less latency
    m.cost.dramExposure = 0.75;
    m.prefetchHitCounter = false;
    return m;
}

MachineConfig
onyx2R12k8MB()
{
    MachineConfig m = baseR12k();
    m.name = "Onyx2 IR";
    m.l2 = {8 * 1024 * 1024, 2, 128};
    return m;
}

std::vector<MachineConfig>
paperMachines()
{
    return {o2R12k1MB(), onyxR10k2MB(), onyx2R12k8MB()};
}

MachineConfig
machineByName(const std::string &name)
{
    if (name == "o2")
        return o2R12k1MB();
    if (name == "onyx")
        return onyxR10k2MB();
    if (name == "onyx2")
        return onyx2R12k8MB();
    throw std::runtime_error("unknown machine '" + name +
                             "' (o2, onyx, onyx2)");
}

MachineConfig
customL2Machine(uint64_t l2_bytes)
{
    MachineConfig m = baseR12k();
    m.name = "custom";
    m.l2 = {l2_bytes, 2, 128};
    return m;
}

} // namespace m4ps::core
