#include "core/workload.hh"

#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace m4ps::core
{

codec::EncoderConfig
Workload::encoderConfig() const
{
    codec::EncoderConfig cfg;
    cfg.width = width;
    cfg.height = height;
    cfg.numVos = numVos;
    cfg.layers = layers;
    cfg.gop = gop;
    cfg.searchRange = searchRange;
    cfg.searchRangeB = searchRangeB;
    cfg.halfPel = halfPel;
    cfg.mpegQuant = mpegQuant;
    cfg.fourMv = fourMv;
    cfg.targetBps = targetBps;
    cfg.frameRate = frameRate;
    cfg.resyncInterval = resyncInterval;
    cfg.dataPartitioning = dataPartitioning;
    cfg.initialQp = initialQp;
    return cfg;
}

std::string
Workload::sizeLabel() const
{
    std::ostringstream os;
    os << width << "x" << height;
    return os.str();
}

void
Workload::validate() const
{
    encoderConfig().validate();
    M4PS_ASSERT(frames > 0, "workload needs at least one frame");
}

Workload
paperWorkload(int width, int height, int num_vos, int layers)
{
    Workload w;
    w.width = width;
    w.height = height;
    w.numVos = num_vos;
    w.layers = layers;
    std::ostringstream os;
    os << num_vos << "VO-" << layers << "VOL-" << width << "x" << height;
    w.name = os.str();
    w.validate();
    return w;
}

int
benchFrames(int default_frames)
{
    if (const char *env = std::getenv("M4PS_FRAMES")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
        warn("ignoring invalid M4PS_FRAMES='", env, "'");
    }
    return default_frames;
}

} // namespace m4ps::core
