/**
 * @file
 * Counter-report documents: the paper's derived metrics, the five
 * conventional-wisdom verdicts, and hardware-vs-memsim
 * cross-validation, as one machine-readable JSON schema.
 *
 * This is the library behind `tools/m4ps_report` and the
 * `--report-out` flags of m4ps_run / m4ps_worker.  A report ingests
 * one or more runs - each a memsim CounterSet measured on a machine
 * preset, optionally paired with host PMU deltas from
 * support/perfctr - and derives:
 *
 *  - the nine Table 2-7 metrics (core/report.hh definitions);
 *  - the paper's five conventional-wisdom verdicts: the four
 *    per-run refutations of core/fallacies (cache friendly, not
 *    latency bound, not bandwidth bound, prefetch mostly wasted)
 *    plus the scaling refutation across runs ("memory performance
 *    degrades with image size / object count") when the document
 *    holds more than one run;
 *  - a divergence section comparing the *measured* L1D / LLC read
 *    miss ratios against memsim's simulated L1 / L2 miss rates and
 *    flagging disagreement beyond a relative tolerance.  The two
 *    numbers measure different machines (the host CPU vs the
 *    modelled R10K/R12K), so divergence is a cross-validation signal
 *    for the simulator's *shape*, not an error by itself; see
 *    docs/PROFILING.md.
 *
 * Schema "m4ps-report-v1" (stable; bench_compare and tests parse it):
 *
 *   {"schema": "m4ps-report-v1", "divergence_tolerance": T,
 *    "runs": [{"label", "machine_preset", "machine", "counters",
 *              "derived", "verdicts", "hw"?, "divergence"?,
 *              "fec"?}, ...],
 *    "scaling": {"available", "from", "to", "holds"}}
 *
 * The optional "fec" object carries the forward-error-correction
 * stage's outcome for decode runs over a lossy channel (ReportFec):
 * how much channel damage the Viterbi stage repaired before the
 * decoder saw a byte, and how much fell through to concealment.
 *
 * parseReportRuns() reads the same document back (ignoring derived
 * fields), so a report is also a counter dump: round-tripping
 * through JSON and re-deriving is the golden-file test.
 */

#ifndef M4PS_CORE_PERFREPORT_HH
#define M4PS_CORE_PERFREPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/fallacies.hh"
#include "core/machine.hh"
#include "core/report.hh"
#include "support/json.hh"
#include "support/perfctr/perfctr.hh"

namespace m4ps::core
{

/**
 * FEC recovery outcome attached to a decode run (docs/FEC.md).
 * Plain numbers rather than fec::FecStats so the report layer stays
 * independent of the fec library; the "fec" object in the schema
 * mirrors these fields in snake_case.
 */
struct ReportFec
{
    bool present = false;    //!< Run decoded through an FEC frame.
    uint64_t blocks = 0;
    uint64_t blocksCorrected = 0;
    uint64_t blocksUncorrectable = 0;
    uint64_t framingErrors = 0;
    uint64_t correctedBits = 0;
};

/** One ingested run: counters + machine + optional hardware counts. */
struct ReportRun
{
    std::string label;       //!< e.g. "encode 720x576".
    std::string preset;      //!< "o2" / "onyx" / "onyx2" / "custom".
    MachineConfig machine;
    memsim::CounterSet ctrs;

    bool hasHw = false;      //!< Host PMU deltas attached.
    perfctr::Counts hw;
    perfctr::Backend hwBackend = perfctr::Backend::Software;

    ReportFec fec;           //!< FEC stage outcome, if any.
};

/** Hardware-vs-memsim comparison for one run. */
struct Divergence
{
    /** Both miss ratios were measurable on the hardware side. */
    bool comparable = false;
    double simL1MissRate = 0;
    double hwL1MissRatio = -1;
    double simL2MissRate = 0;
    double hwLlcMissRatio = -1;
    double l1RelDiff = 0;
    double llcRelDiff = 0;
    bool diverged = false; //!< Any rel diff beyond the tolerance.
};

/** Compare simulated and measured miss ratios at @p tolerance. */
Divergence crossValidate(const MemoryReport &sim,
                         const perfctr::Counts &hw, double tolerance);

/** The nine derived metrics as a JSON object (snake_case keys). */
support::JsonValue memoryReportJson(const MemoryReport &r);

/** The four per-run fallacy refutations as a JSON object. */
support::JsonValue verdictsJson(const FallacyVerdicts &v);

/** Hardware counter deltas + backend as a JSON object. */
support::JsonValue hwJson(const perfctr::Counts &c,
                          perfctr::Backend backend);

/** Parse an "hw" object written by hwJson(). */
bool hwFromJson(const support::JsonValue &v, perfctr::Counts *out,
                perfctr::Backend *backend);

/** Build the full report document over @p runs. */
support::JsonValue buildCounterReport(const std::vector<ReportRun> &runs,
                                      double divergenceTolerance);

/**
 * Read runs back from a report (or counter-dump) document.  Machines
 * resolve through the "machine_preset" key; "custom" presets
 * reconstruct via "l2_bytes".  Throws support::JsonError on
 * documents that do not carry the expected shape.
 */
std::vector<ReportRun> parseReportRuns(const support::JsonValue &doc);

/** Paper-style human rendering of the same content. */
void printCounterReport(std::ostream &os,
                        const std::vector<ReportRun> &runs,
                        double divergenceTolerance);

} // namespace m4ps::core

#endif // M4PS_CORE_PERFREPORT_HH
