/**
 * @file
 * Experiment runner: encode/decode a workload on a modelled machine
 * and report the paper's metrics.
 *
 * One run = one (workload, machine) pair with a fresh memory
 * hierarchy, mirroring one row-group of the paper's tables.  The
 * synthetic scene stands in for the camera content; rendering and
 * verification (PSNR against the regenerated source) run untraced so
 * they never perturb the measurement.
 */

#ifndef M4PS_CORE_RUNNER_HH
#define M4PS_CORE_RUNNER_HH

#include <map>
#include <vector>

#include "codec/decoder.hh"
#include "core/report.hh"
#include "core/workload.hh"
#include "support/perfctr/perfctr.hh"
#include "video/scene.hh"

namespace m4ps::core
{

/**
 * Renders the per-frame VO inputs of a workload from its scene
 * generator.  One frame time = one inputs() call; rendering is
 * untraced (it models the capture path, not codec work).  Public so
 * incremental encode loops - the checkpointing job worker
 * (src/service/worker.cc) foremost - feed an Mpeg4Encoder the exact
 * frames ExperimentRunner would.
 */
class SceneFeeder
{
  public:
    SceneFeeder(memsim::SimContext &ctx, const Workload &w);

    /** Render frame @p t and return the per-VO inputs. */
    std::vector<codec::VoInput> inputs(int t);

    const video::SceneGenerator &generator() const { return gen_; }

  private:
    video::SceneGenerator gen_;
    video::Yuv420Image scene_;
    std::vector<video::Yuv420Image> objFrames_;
    std::vector<video::Plane> objAlphas_;
};

/** Everything measured in one experiment run. */
struct RunResult
{
    std::string workload;
    std::string machine;

    MemoryReport whole;                          //!< Whole program.
    std::map<std::string, MemoryReport> regions; //!< VopEncode/VopDecode.

    codec::EncoderStats enc;  //!< Valid for encode runs.
    codec::DecodeStats dec;   //!< Valid for decode runs.

    double meanPsnrY = 0;     //!< Decode runs: composited-scene PSNR.
    int displayedFrames = 0;
    uint64_t streamBytes = 0;
    uint64_t residentBytes = 0;
    double modelledSeconds = 0;
    /**
     * Macroblock-row worker threads the codec ran with (the global
     * support::ThreadPool width).  Bitstreams, counters, and every
     * modelled metric are identical for any value; only host
     * wall-clock time changes.
     */
    int threads = 1;

    /**
     * Host PMU deltas over the traced encode/decode call, when
     * perfctr::setEnabled(true) was requested (m4ps_run --perf).
     * hasHw stays false otherwise.  On the software backend only the
     * Cycles slot is valid (clock ticks); per-thread counting means
     * pool-worker cycles are not attributed when threads > 1
     * (docs/PROFILING.md).
     */
    bool hasHw = false;
    perfctr::Counts hw;
    perfctr::Backend perfBackend = perfctr::Backend::Software;
};

/** Static entry points for the experiment harness. */
class ExperimentRunner
{
  public:
    /**
     * Encode @p w on @p machine; if @p stream_out is non-null it
     * receives the elementary stream for later decoding.
     */
    static RunResult runEncode(const Workload &w,
                               const MachineConfig &machine,
                               std::vector<uint8_t> *stream_out =
                                   nullptr);

    /**
     * Decode @p stream (produced from @p w) on @p machine.  @p opts
     * selects strict vs tolerant decoding and resource limits; pass
     * tolerant options when the stream went through a lossy channel.
     */
    static RunResult runDecode(const Workload &w,
                               const MachineConfig &machine,
                               const std::vector<uint8_t> &stream,
                               const codec::DecodeOptions &opts = {});

    /** Fast untraced encode, for producing decode-run inputs. */
    static std::vector<uint8_t> encodeUntraced(const Workload &w);

    /**
     * Encode without a machine model attached (untraced) but using
     * the supplied context; exposed for tests.
     */
    static std::vector<uint8_t> encodeWith(memsim::SimContext &ctx,
                                           const Workload &w,
                                           codec::EncoderStats
                                               *stats_out = nullptr);
};

} // namespace m4ps::core

#endif // M4PS_CORE_RUNNER_HH
