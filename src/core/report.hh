/**
 * @file
 * Memory-performance reports with the paper's metric definitions.
 *
 * From §3.1:
 *  - "Cache line reuse is the mean number of times a cache line is
 *    used after being loaded and before being evicted.  L1C line
 *    reuse is the graduated loads plus graduated stores, minus L1
 *    data cache misses, all divided by L1 data cache misses.
 *    Likewise, L2C line reuse is L1 data cache misses minus L2 data
 *    misses, all divided by L2 data misses."
 *  - "DRAM time refers to the cycles during which the processor is
 *    stalled due to secondary data cache misses."
 *  - "L2-DRAM b/w is the amount of data moved between the secondary
 *    cache and main memory, divided by the total program execution
 *    time ... the sum of the L2 cache misses multiplied by the L2
 *    cache line size, plus the number of bytes written back from L2.
 *    L1-L2 b/w is similar."
 *  - "Prefetch L1C miss refers to the proportion of prefetch
 *    instructions that do not become nops.  A high prefetch miss
 *    rate (near one) is desirable."
 */

#ifndef M4PS_CORE_REPORT_HH
#define M4PS_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/machine.hh"
#include "memsim/counters.hh"

namespace m4ps::core
{

/** Derived metrics for one run or one instrumented region. */
struct MemoryReport
{
    memsim::CounterSet ctrs;
    double seconds = 0;

    double l1MissRate = 0;       //!< L1 misses / (loads + stores).
    double l1MissTime = 0;       //!< L2-service stall share of time.
    double l1LineReuse = 0;
    double l2MissRate = 0;       //!< L2 misses / L1 misses.
    double l2LineReuse = 0;
    double dramTime = 0;         //!< DRAM stall share of time.
    double l1l2BwMBs = 0;
    double l2DramBwMBs = 0;
    double prefetchL1Miss = 0;   //!< NaN when the CPU lacks the counter.

    /** Derive all metrics from counters on @p machine. */
    static MemoryReport from(const memsim::CounterSet &ctrs,
                             const MachineConfig &machine);

    /** Rows in the order of the paper's Tables 2-7. */
    std::vector<std::pair<std::string, std::string>> rows() const;
};

/** Format a metric value as the paper prints it ("n/a" for NaN). */
std::string formatMetric(const std::string &name, double value);

/**
 * Print a paper-style table: one metric per row, one column per
 * (size, machine) configuration.
 */
void printMetricTable(const std::string &title,
                      const std::vector<std::string> &column_labels,
                      const std::vector<MemoryReport> &columns);

} // namespace m4ps::core

#endif // M4PS_CORE_REPORT_HH
