/**
 * @file
 * Workload descriptors.
 *
 * The paper "manipulates a 30-frame video at two resolutions: the
 * 720x576 used for PAL, and a 1024x768 size that exceeds NTSC but is
 * less than HDTV.  Pixel depth is eight bits.  The frame rate is 30
 * Hz, and the target bitrate is 38400" (§3.1), with 1 or 3 visual
 * objects and 1 or 2 layers per object.
 */

#ifndef M4PS_CORE_WORKLOAD_HH
#define M4PS_CORE_WORKLOAD_HH

#include <string>

#include "codec/encoder.hh"

namespace m4ps::core
{

/** One experiment workload (scene + codec parameters). */
struct Workload
{
    std::string name;
    int width = 720;
    int height = 576;
    int frames = 30;          //!< 30-frame sequences, as in the paper.
    int numVos = 1;           //!< 1, or 3 for the multi-object runs.
    int layers = 1;           //!< 1, or 2 for the multi-layer runs.
    double targetBps = 38400.0;
    double frameRate = 30.0;
    codec::GopConfig gop{12, 2};
    int searchRange = 8;
    int searchRangeB = 4;
    bool halfPel = true;
    bool mpegQuant = false;
    bool fourMv = true;
    int resyncInterval = 0;       //!< MB rows per video packet; 0 = off.
    bool dataPartitioning = false;
    uint64_t seed = 7;
    /**
     * Starting quantizer; <= 0 derives it from the target rate.  The
     * job supervisor's degradation ladder (docs/OPERATIONS.md) pins
     * this high to cheapen encodes that keep blowing their deadline.
     */
    int initialQp = 0;

    /** Encoder configuration equivalent to this workload. */
    codec::EncoderConfig encoderConfig() const;

    /** "720x576", "1024x768", ... */
    std::string sizeLabel() const;

    void validate() const;
};

/** The paper's workload for a given size / VO / layer combination. */
Workload paperWorkload(int width, int height, int num_vos, int layers);

/**
 * Environment-tunable frame count for the benchmark harness: the
 * paper uses 30 frames; M4PS_FRAMES overrides for quicker runs.
 */
int benchFrames(int default_frames = 30);

} // namespace m4ps::core

#endif // M4PS_CORE_WORKLOAD_HH
