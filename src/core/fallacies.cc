#include "core/fallacies.hh"

#include <cmath>
#include <sstream>

namespace m4ps::core
{

std::string
FallacyVerdicts::str() const
{
    std::ostringstream os;
    auto yn = [](bool b) { return b ? "yes" : "NO"; };
    os << "cache friendly: " << yn(cacheFriendly)
       << ", not latency bound: " << yn(notLatencyBound)
       << ", not bandwidth bound: " << yn(notBandwidthBound)
       << ", prefetch mostly wasted: " << yn(prefetchMostlyWasted);
    return os.str();
}

FallacyVerdicts
judge(const MemoryReport &report, const MachineConfig &machine)
{
    FallacyVerdicts v;
    v.cacheFriendly =
        report.l1MissRate < 0.01 && report.l1LineReuse > 100.0;
    // Paper worst case: "a processor stall time of no more than 12%".
    v.notLatencyBound = report.dramTime < 0.15;
    v.notBandwidthBound =
        report.l2DramBwMBs < 0.10 * machine.busSustainedMBs;
    v.prefetchMostlyWasted =
        std::isnan(report.prefetchL1Miss) ||
        report.prefetchL1Miss < 0.75;
    return v;
}

bool
sizeScalingHolds(const MemoryReport &small, const MemoryReport &large,
                 double slack)
{
    const bool l2_ok =
        large.l2MissRate <= small.l2MissRate * (1.0 + slack) + 0.01;
    const bool dram_ok =
        large.dramTime <= small.dramTime * (1.0 + slack) + 0.01;
    const bool l1_ok =
        large.l1MissRate <= small.l1MissRate * (1.0 + slack) + 0.001;
    return l2_ok && dram_ok && l1_ok;
}

bool
objectScalingHolds(const MemoryReport &single, const MemoryReport &multi,
                   double slack)
{
    return sizeScalingHolds(single, multi, slack);
}

} // namespace m4ps::core
