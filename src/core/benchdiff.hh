/**
 * @file
 * Regression comparison between two BENCH_*.json documents.
 *
 * The bench binaries all emit the "m4ps-bench-v1" schema through
 * bench/bench_json.hh:
 *
 *   {"schema": "m4ps-bench-v1",
 *    "benches": [{"bench", "config", "metrics", "backend"}, ...]}
 *
 * bench_compare (and the CI bench job) diff a freshly generated
 * document against a committed baseline with per-metric tolerances.
 * Metrics split into two failure classes:
 *
 *  - *hard* metrics - simulated counters, miss rates, bandwidth
 *    ratios, verdict booleans.  memsim is deterministic (bit-identical
 *    counters across thread counts is an existing tier-1 guarantee),
 *    so these must match the baseline within a tight tolerance;
 *    drifting means the model changed and the baseline must be
 *    regenerated deliberately.
 *  - *soft* metrics - wall-clock timings (metric names containing
 *    "_ns", "_us", "_ms", "seconds", "wall", "overhead", "cycle").
 *    These vary with the host and only produce warnings, never a
 *    failing exit.
 *
 * Missing benches or missing hard metrics in the current document are
 * hard findings; *extra* benches/metrics are informational only, so
 * adding a new bench does not require touching the baseline of the
 * others.
 */

#ifndef M4PS_CORE_BENCHDIFF_HH
#define M4PS_CORE_BENCHDIFF_HH

#include <string>
#include <vector>

#include "support/json.hh"

namespace m4ps::core
{

/** Tolerances for diffBenchDocs (relative, e.g. 0.05 = 5%). */
struct BenchDiffOptions
{
    /** Hard-class metrics (counters/ratios); deterministic. */
    double counterTolerance = 1e-9;
    /** Soft-class metrics (timings); generous, warn-only. */
    double timingTolerance = 0.50;
};

/** One discrepancy between baseline and current. */
struct BenchFinding
{
    enum class Kind
    {
        MissingBench,  //!< Baseline bench absent from current doc.
        MissingMetric, //!< Baseline metric absent from current bench.
        HardDrift,     //!< Hard metric beyond counterTolerance.
        SoftDrift,     //!< Timing metric beyond timingTolerance.
    };

    Kind kind;
    std::string bench;
    std::string metric;   //!< Empty for MissingBench.
    double baseline = 0;
    double current = 0;
    double relDiff = 0;
    double tolerance = 0;

    /** Fails the comparison (exit 1): everything but SoftDrift. */
    bool hard() const { return kind != Kind::SoftDrift; }

    /** One-line human rendering. */
    std::string str() const;
};

/** Outcome of one comparison. */
struct BenchDiffResult
{
    std::vector<BenchFinding> findings;
    int benchesCompared = 0;
    int metricsCompared = 0;

    bool hardRegression() const;
};

/** Timing (soft) metric by name? Exposed for tests. */
bool isTimingMetric(const std::string &name);

/**
 * Compare @p current against @p baseline.  Both must be
 * "m4ps-bench-v1" documents; throws support::JsonError when either
 * lacks a "benches" array.
 */
BenchDiffResult diffBenchDocs(const support::JsonValue &baseline,
                              const support::JsonValue &current,
                              const BenchDiffOptions &opts = {});

} // namespace m4ps::core

#endif // M4PS_CORE_BENCHDIFF_HH
