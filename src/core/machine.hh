/**
 * @file
 * Modelled machine configurations.
 *
 * The paper experiments on three SGI systems (Table 1): an O2
 * (R12000, 1 MB L2), an Onyx VTX (R10000, 2 MB L2), and an Onyx2
 * InfiniteReality (R12000, 8 MB L2), all with 32 KB 2-way primary
 * data caches, a 64-bit 133 MHz split-transaction system bus, and
 * 4-way interleaved SDRAM sustaining 680 MB/s (800 MB/s peak).
 * MachineConfig captures those parameters for the simulator.
 */

#ifndef M4PS_CORE_MACHINE_HH
#define M4PS_CORE_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "memsim/hierarchy.hh"

namespace m4ps::core
{

/** One modelled platform. */
struct MachineConfig
{
    std::string name;       //!< e.g. "O2".
    std::string cpu;        //!< "R10K" or "R12K".
    memsim::CacheConfig l1{32 * 1024, 2, 32};
    memsim::CacheConfig l2{1024 * 1024, 2, 128};
    memsim::CostModel cost;

    /**
     * The R10000 cannot count prefetches that hit in L1 (paper §3.1);
     * reports on R10K machines show "n/a" for that metric.
     */
    bool prefetchHitCounter = true;

    /** Sustained / peak memory bandwidth (Table 1). */
    double busSustainedMBs = 680.0;
    double busPeakMBs = 800.0;

    /** Short identifier like "R12K/1MB". */
    std::string label() const;

    /** Build a fresh hierarchy for one experiment run. */
    std::unique_ptr<memsim::MemoryHierarchy> makeHierarchy() const;
};

/** SGI O2: R12000, 1 MB secondary cache. */
MachineConfig o2R12k1MB();

/** SGI Onyx VTX: R10000, 2 MB secondary cache. */
MachineConfig onyxR10k2MB();

/** SGI Onyx2 InfiniteReality: R12000, 8 MB secondary cache. */
MachineConfig onyx2R12k8MB();

/** The three platforms, in the column order of the paper's tables. */
std::vector<MachineConfig> paperMachines();

/** A machine with an arbitrary L2 size (ablation studies). */
MachineConfig customL2Machine(uint64_t l2_bytes);

/**
 * Preset by CLI/report name: "o2", "onyx", "onyx2" (case-sensitive).
 * Throws std::runtime_error naming the valid presets otherwise; the
 * tools and the report pipeline share this one mapping.
 */
MachineConfig machineByName(const std::string &name);

} // namespace m4ps::core

#endif // M4PS_CORE_MACHINE_HH
