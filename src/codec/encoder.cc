#include "codec/encoder.hh"

#include <algorithm>
#include <cmath>

#include "bitstream/expgolomb.hh"
#include "bitstream/startcode.hh"
#include "support/logging.hh"
#include "support/obs/obs.hh"
#include "support/serialize.hh"
#include "video/resample.hh"

namespace m4ps::codec
{

namespace
{

constexpr uint8_t kEncStateMarker = 0xe5;

void
saveVopStats(support::StateWriter &sw, const VopStats &s)
{
    sw.u8(static_cast<uint8_t>(s.type));
    sw.u64(s.bits);
    sw.i32(s.intraMbs);
    sw.i32(s.interMbs);
    sw.i32(s.backwardMbs);
    sw.i32(s.bidirectionalMbs);
    sw.i32(s.fourMvMbs);
    sw.i32(s.skippedMbs);
    sw.i32(s.transparentMbs);
    sw.i32(s.codedBlocks);
    sw.i32(s.corruptedRows);
    sw.i32(s.packets);
    sw.i32(s.corruptPackets);
    sw.i32(s.concealedMbs);
}

void
restoreVopStats(support::StateReader &sr, VopStats &s)
{
    s.type = static_cast<VopType>(sr.u8());
    s.bits = sr.u64();
    s.intraMbs = sr.i32();
    s.interMbs = sr.i32();
    s.backwardMbs = sr.i32();
    s.bidirectionalMbs = sr.i32();
    s.fourMvMbs = sr.i32();
    s.skippedMbs = sr.i32();
    s.transparentMbs = sr.i32();
    s.codedBlocks = sr.i32();
    s.corruptedRows = sr.i32();
    s.packets = sr.i32();
    s.corruptPackets = sr.i32();
    s.concealedMbs = sr.i32();
}

} // namespace

void
EncoderConfig::validate() const
{
    M4PS_ASSERT(width > 0 && height > 0 &&
                width % 16 == 0 && height % 16 == 0,
                "frame dimensions must be positive multiples of 16, "
                "got ", width, "x", height);
    M4PS_ASSERT(numVos >= 1 && numVos <= 16, "bad VO count ", numVos);
    M4PS_ASSERT(layers == 1 || layers == 2, "layers must be 1 or 2");
    gop.validate();
    M4PS_ASSERT(targetBps > 0 && frameRate > 0, "bad rate targets");
    M4PS_ASSERT(resyncInterval >= 0, "negative resync interval");
    M4PS_ASSERT(!dataPartitioning || resyncInterval > 0,
                "data partitioning requires video packets "
                "(resyncInterval > 0)");
}

Mpeg4Encoder::Mpeg4Encoder(memsim::SimContext &ctx,
                           const EncoderConfig &cfg)
    : cfg_(cfg), ctx_(ctx)
{
    cfg_.validate();

    // Layered (spatially scalable) VOLs code base + enhancement for
    // every frame, so the base must reconstruct immediately: force a
    // B-free GOP in layered mode (simple/scalable profiles have no
    // B-VOPs either).
    GopConfig gop = cfg_.gop;
    if (cfg_.layers == 2)
        gop.bFrames = 0;
    if (gop.intraPeriod % (gop.bFrames + 1) != 0)
        gop.intraPeriod =
            (gop.intraPeriod / (gop.bFrames + 1)) * (gop.bFrames + 1);

    const int total_vols = cfg_.numVos * cfg_.layers;
    const double bps_per_vol = cfg_.targetBps / total_vols;

    // Derive a starting quantizer from the target bits per pixel so
    // the controller starts near its operating point.
    int initial_qp = cfg_.initialQp;
    if (initial_qp <= 0) {
        const double bpp =
            cfg_.targetBps /
            (cfg_.frameRate * cfg_.width * cfg_.height);
        initial_qp = static_cast<int>(
            std::lround(0.55 / std::max(bpp, 1e-4)));
        initial_qp = std::clamp(initial_qp, 2, 31);
    }

    vos_.resize(cfg_.numVos);
    for (int v = 0; v < cfg_.numVos; ++v) {
        VoState &vo = vos_[v];
        const bool shaped = v > 0;

        // Half-resolution base layers are padded up to the next
        // macroblock multiple (720x576 halves to 360x288, and 360 is
        // not MB aligned); the padding replicates the frame edge.
        const int base_w = ((cfg_.width / 2 + 15) / 16) * 16;
        const int base_h = ((cfg_.height / 2 + 15) / 16) * 16;

        VolConfig base;
        base.voId = v;
        base.volId = 0;
        base.width = cfg_.layers == 2 ? base_w : cfg_.width;
        base.height = cfg_.layers == 2 ? base_h : cfg_.height;
        base.hasShape = shaped;
        base.searchRange = cfg_.searchRange;
        base.searchRangeB = cfg_.searchRangeB;
        base.halfPel = cfg_.halfPel;
        base.mpegQuant = cfg_.mpegQuant;
        base.fourMv = cfg_.fourMv;
        base.resyncInterval = cfg_.resyncInterval;
        base.dataPartitioning = cfg_.dataPartitioning;

        vo.rcBase = std::make_unique<RateController>(
            bps_per_vol, cfg_.frameRate, initial_qp);
        vo.base = std::make_unique<VolEncoder>(ctx_, base, gop,
                                               vo.rcBase.get());

        if (cfg_.layers == 2) {
            VolConfig enh = base;
            enh.volId = 1;
            enh.width = cfg_.width;
            enh.height = cfg_.height;
            enh.enhancement = true;
            // The enhancement layer searches with the full range,
            // like the base (MoMuSys uses the same f_code).
            enh.searchRange = cfg_.searchRange;
            enh.searchRangeB = cfg_.searchRange;
            vo.rcEnh = std::make_unique<RateController>(
                bps_per_vol, cfg_.frameRate, initial_qp);
            vo.enh = std::make_unique<VolEncoder>(ctx_, enh, gop,
                                                  vo.rcEnh.get());
            vo.baseInput = video::Yuv420Image(ctx_, base_w, base_h);
            if (shaped)
                vo.baseAlpha = video::Plane(ctx_, base_w, base_h);
            // The upsampled reference may exceed the full-resolution
            // frame (padding); prediction reads stay in range.
            vo.upsampled = video::Yuv420Image(ctx_, 2 * base_w,
                                              2 * base_h);
        }
    }

    writeHeaders();
}

void
Mpeg4Encoder::scaleBitrate(double factor)
{
    for (VoState &vo : vos_) {
        if (vo.rcBase)
            vo.rcBase->scaleBudget(factor);
        if (vo.rcEnh)
            vo.rcEnh->scaleBudget(factor);
    }
}

void
Mpeg4Encoder::writeHeaders()
{
    bits::putStartCode(bw_, static_cast<uint8_t>(
        bits::StartCode::VisualObjectSequence));
    bits::putUe(bw_, static_cast<uint32_t>(cfg_.numVos));
    for (int v = 0; v < cfg_.numVos; ++v) {
        bits::putVoStartCode(bw_, v);
        bits::putUe(bw_, static_cast<uint32_t>(cfg_.layers));
        vos_[v].base->writeHeader(bw_);
        if (vos_[v].enh)
            vos_[v].enh->writeHeader(bw_);
    }
}

void
Mpeg4Encoder::account(VopType type, const VopStats &s)
{
    ++stats_.vops;
    switch (type) {
      case VopType::I: ++stats_.iVops; break;
      case VopType::P: ++stats_.pVops; break;
      case VopType::B: ++stats_.bVops; break;
    }
    stats_.mb += s;
    stats_.totalBits += s.bits;
}

void
Mpeg4Encoder::encodeFrame(const std::vector<VoInput> &inputs,
                          int timestamp)
{
    M4PS_ASSERT(!finished_, "encodeFrame after finish()");
    M4PS_ASSERT(static_cast<int>(inputs.size()) == cfg_.numVos,
                "expected ", cfg_.numVos, " VO inputs, got ",
                inputs.size());

    obs::Span frameSpan("codec", "enc.frame");
    if (frameSpan.active())
        frameSpan.setArgs("{\"timestamp\":" + std::to_string(timestamp) +
                          ",\"vos\":" + std::to_string(cfg_.numVos) +
                          "}");
    static obs::Counter &framesC = obs::counter("enc.frames");
    framesC.add();

    for (int v = 0; v < cfg_.numVos; ++v) {
        VoState &vo = vos_[v];
        const VoInput &in = inputs[v];
        M4PS_ASSERT(in.frame, "missing frame for VO ", v);
        M4PS_ASSERT(v == 0 || in.alpha, "shaped VO ", v,
                    " needs an alpha plane");

        if (cfg_.layers == 1) {
            auto stats = vo.base->encodeFrame(bw_, *in.frame, in.alpha,
                                              timestamp);
            // encodeFrame returns [anchor, B...] when it emits.
            for (size_t i = 0; i < stats.size(); ++i) {
                VopType t = VopType::B;
                if (i == 0) {
                    t = (stats_.vops == 0 ||
                         timestamp % cfg_.gop.intraPeriod == 0)
                            ? VopType::I
                            : VopType::P;
                }
                account(t, stats[i]);
            }
            continue;
        }

        // Spatial scalability: base at half resolution first.
        video::downsampleFrame(*in.frame, vo.baseInput);
        const video::Plane *base_alpha = nullptr;
        if (in.alpha) {
            video::downsampleAlpha(*in.alpha, vo.baseAlpha);
            base_alpha = &vo.baseAlpha;
        }
        auto base_stats = vo.base->encodeFrame(bw_, vo.baseInput,
                                               base_alpha, timestamp);
        M4PS_ASSERT(base_stats.size() == 1,
                    "layered base must code every frame immediately");
        account(timestamp % cfg_.gop.intraPeriod == 0 ? VopType::I
                                                      : VopType::P,
                base_stats[0]);

        // Enhancement predicts from the upsampled base recon.
        video::upsampleFrame(vo.base->lastAnchorRecon(), vo.upsampled);
        VopStats enh_stats = vo.enh->encodeEnhanced(
            bw_, *in.frame, in.alpha, timestamp, vo.upsampled);
        account(VopType::B, enh_stats);
    }
}

void
Mpeg4Encoder::saveState(support::StateWriter &sw) const
{
    sw.u8(kEncStateMarker);
    sw.b(finished_);
    bw_.saveState(sw);
    sw.i32(stats_.vops);
    sw.i32(stats_.iVops);
    sw.i32(stats_.pVops);
    sw.i32(stats_.bVops);
    saveVopStats(sw, stats_.mb);
    sw.u64(stats_.totalBits);
    sw.i32(static_cast<int32_t>(vos_.size()));
    for (const VoState &vo : vos_) {
        vo.rcBase->saveState(sw);
        vo.base->saveState(sw);
        sw.b(vo.enh != nullptr);
        if (vo.enh) {
            vo.rcEnh->saveState(sw);
            vo.enh->saveState(sw);
        }
    }
}

void
Mpeg4Encoder::restoreState(support::StateReader &sr)
{
    sr.expect(kEncStateMarker, "Mpeg4Encoder");
    finished_ = sr.b();
    bw_.restoreState(sr);
    stats_.vops = sr.i32();
    stats_.iVops = sr.i32();
    stats_.pVops = sr.i32();
    stats_.bVops = sr.i32();
    restoreVopStats(sr, stats_.mb);
    stats_.totalBits = sr.u64();
    const int32_t n = sr.i32();
    if (n != static_cast<int32_t>(vos_.size()))
        throw support::SerializeError(
            "checkpoint VO count " + std::to_string(n) +
            " != configured " + std::to_string(vos_.size()));
    for (VoState &vo : vos_) {
        vo.rcBase->restoreState(sr);
        vo.base->restoreState(sr);
        const bool has_enh = sr.b();
        if (has_enh != (vo.enh != nullptr))
            throw support::SerializeError(
                "checkpoint layer structure mismatch");
        if (vo.enh) {
            vo.rcEnh->restoreState(sr);
            vo.enh->restoreState(sr);
        }
    }
}

std::vector<uint8_t>
Mpeg4Encoder::finish()
{
    M4PS_ASSERT(!finished_, "finish() called twice");
    finished_ = true;
    for (auto &vo : vos_) {
        auto stats = vo.base->flush(bw_);
        for (const auto &s : stats)
            account(VopType::P, s);
    }
    bits::putStartCode(bw_, static_cast<uint8_t>(
        bits::StartCode::VisualObjectSequenceEnd));
    return bw_.take();
}

} // namespace m4ps::codec
