/**
 * @file
 * Binary shape coding.
 *
 * "Arbitrary shapes are coded using a context-based arithmetic
 * encoding scheme and are compressed via a bitmap-based method"
 * (paper §2.1).  Each 16x16 binary alpha block (BAB) is classified
 * as all-transparent, all-opaque, or boundary; boundary BABs are
 * coded pixel-by-pixel with a 7-pixel causal context template
 * driving an adaptive binary arithmetic coder.  Shape coding is
 * lossless, so the encoder may use the original alpha plane as the
 * already-coded causal state.
 */

#ifndef M4PS_CODEC_SHAPE_HH
#define M4PS_CODEC_SHAPE_HH

#include <array>

#include "codec/arith.hh"
#include "video/plane.hh"

namespace m4ps::codec
{

/** Classification of one binary alpha block. */
enum class BabMode
{
    Transparent, //!< All pixels zero.
    Opaque,      //!< All pixels set.
    Coded,       //!< Boundary block, context-coded.
};

/** Per-VOP shape coder state (context probabilities). */
class ShapeCoder
{
  public:
    /** Number of distinct template contexts (7 binary pixels). */
    static constexpr int kContexts = 128;

    ShapeCoder() = default;

    /** Reset context adaptation (call per VOP). */
    void reset();

    /** Classify the BAB at pixel origin (@p x0, @p y0). Traced reads. */
    static BabMode analyzeBab(const video::Plane &alpha, int x0, int y0);

    /**
     * Context-code the BAB at (@p x0, @p y0) into @p enc.  Context
     * pixels are read from @p alpha itself (causal availability:
     * rows above the BAB, the BABs to the left, and already-coded
     * pixels inside the BAB).
     */
    void encodeBab(ArithEncoder &enc, const video::Plane &alpha,
                   int x0, int y0);

    /** Inverse of encodeBab(); writes decoded pixels into @p alpha. */
    void decodeBab(ArithDecoder &dec, video::Plane &alpha,
                   int x0, int y0);

  private:
    /**
     * Gather the 7-pixel context at (@p x, @p y).  Unavailable
     * positions (outside the plane, or in BABs not yet coded) read
     * as transparent.
     */
    static int context(const video::Plane &alpha, int x0, int y0,
                       int x, int y);

    std::array<ArithContext, kContexts> ctx_;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_SHAPE_HH
