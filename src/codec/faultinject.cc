#include "codec/faultinject.hh"

#include <algorithm>
#include <cmath>

#include "bitstream/startcode.hh"
#include "codec/streamtools.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace m4ps::codec
{

std::vector<uint8_t>
flipBits(std::vector<uint8_t> stream, double ber, uint64_t seed,
         size_t protect_prefix)
{
    if (ber <= 0 || stream.size() <= protect_prefix)
        return stream;
    Rng rng(seed);
    const uint64_t total_bits =
        (stream.size() - protect_prefix) * 8ull;
    // Geometric inter-error gaps: equivalent to a Bernoulli draw per
    // bit but O(errors) instead of O(bits).
    const double log1m = std::log1p(-std::min(ber, 0.999999));
    uint64_t pos = 0;
    while (true) {
        const double u = rng.uniformReal();
        const double gap = std::floor(std::log1p(-u) / log1m);
        if (gap >= static_cast<double>(total_bits - pos))
            break;
        pos += static_cast<uint64_t>(gap);
        const size_t byte = protect_prefix + (pos >> 3);
        stream[byte] ^= static_cast<uint8_t>(1u << (7 - (pos & 7)));
        if (++pos >= total_bits)
            break;
    }
    return stream;
}

std::vector<uint8_t>
burstErrors(std::vector<uint8_t> stream, int bursts, int burst_bytes,
            uint64_t seed, size_t protect_prefix)
{
    if (bursts <= 0 || burst_bytes <= 0 ||
        stream.size() <= protect_prefix)
        return stream;
    Rng rng(seed ^ 0xb5ull);
    const size_t span = stream.size() - protect_prefix;
    for (int b = 0; b < bursts; ++b) {
        const size_t start =
            protect_prefix +
            static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(span) - 1));
        const size_t end =
            std::min(stream.size(),
                     start + static_cast<size_t>(burst_bytes));
        for (size_t i = start; i < end; ++i)
            stream[i] = static_cast<uint8_t>(rng.next());
    }
    return stream;
}

std::vector<uint8_t>
truncateStream(std::vector<uint8_t> stream, double fraction,
               size_t protect_prefix)
{
    if (fraction >= 1.0)
        return stream;
    const double f = std::max(fraction, 0.0);
    const size_t keep = std::max(
        protect_prefix,
        static_cast<size_t>(f * static_cast<double>(stream.size())));
    stream.resize(std::min(keep, stream.size()));
    return stream;
}

std::vector<uint8_t>
emulateStartcodes(std::vector<uint8_t> stream, int count, uint64_t seed,
                  size_t protect_prefix)
{
    if (count <= 0 || stream.size() < protect_prefix + 4)
        return stream;
    Rng rng(seed ^ 0x5cull);
    const size_t span = stream.size() - protect_prefix - 3;
    for (int c = 0; c < count; ++c) {
        const size_t at =
            protect_prefix +
            static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(span) - 1));
        stream[at] = 0x00;
        stream[at + 1] = 0x00;
        stream[at + 2] = 0x01;
        // A random code byte: sometimes a VOP, sometimes garbage.
        stream[at + 3] = static_cast<uint8_t>(rng.next());
    }
    return stream;
}

std::vector<uint8_t>
injectFaults(std::vector<uint8_t> stream, const FaultSpec &spec)
{
    const size_t originalSize = stream.size();
    stream = flipBits(std::move(stream), spec.ber, spec.seed,
                      spec.protectPrefixBytes);
    stream = burstErrors(std::move(stream), spec.bursts,
                         spec.burstBytes, spec.seed,
                         spec.protectPrefixBytes);
    stream = emulateStartcodes(std::move(stream),
                               spec.startcodeEmulations, spec.seed,
                               spec.protectPrefixBytes);
    // Truncation runs last, by contract (see the header): its
    // fraction applies to the *original* length, and because the
    // in-place classes above never resize, running it last is what
    // makes that equivalence hold.
    M4PS_ASSERT(stream.size() == originalSize,
                "in-place fault classes must not resize the stream");
    stream = truncateStream(std::move(stream), spec.truncateFraction,
                            spec.protectPrefixBytes);
    return stream;
}

size_t
protectableHeaderBytes(const std::vector<uint8_t> &stream)
{
    for (const StreamSection &s : parseSections(stream)) {
        if (bits::isVopCode(s.code))
            return s.offset;
    }
    return stream.size();
}

} // namespace m4ps::codec
