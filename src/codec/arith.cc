#include "codec/arith.hh"

#include "support/logging.hh"

namespace m4ps::codec
{

namespace
{

constexpr uint32_t kTop = 1u << 24;

/** Split the range according to P(0); guaranteed inside (0, range). */
uint32_t
splitPoint(uint32_t range, uint16_t p0)
{
    uint32_t split = static_cast<uint32_t>(
        (static_cast<uint64_t>(range) * p0) >> 16);
    if (split == 0)
        split = 1;
    if (split >= range)
        split = range - 1;
    return split;
}

} // namespace

void
ArithEncoder::shiftLow()
{
    const uint32_t low32 = static_cast<uint32_t>(low_);
    const uint8_t carry = static_cast<uint8_t>(low_ >> 32);
    if (low32 < 0xff000000u || carry) {
        uint8_t byte = cache_;
        do {
            out_.push_back(static_cast<uint8_t>(byte + carry));
            byte = 0xff;
        } while (--cacheSize_ != 0);
        cache_ = static_cast<uint8_t>(low32 >> 24);
    }
    ++cacheSize_;
    low_ = static_cast<uint64_t>(low32) << 8 & 0xffffffffull;
}

void
ArithEncoder::renormalize()
{
    while (range_ < kTop) {
        shiftLow();
        range_ <<= 8;
    }
}

void
ArithEncoder::encodeBit(ArithContext &ctx, bool bit)
{
    M4PS_ASSERT(!finished_, "encode after finish()");
    const uint32_t split = splitPoint(range_, ctx.p0);
    if (!bit) {
        range_ = split;
    } else {
        low_ += split;
        range_ -= split;
    }
    ctx.adapt(bit);
    renormalize();
}

void
ArithEncoder::encodeBypass(bool bit)
{
    M4PS_ASSERT(!finished_, "encode after finish()");
    const uint32_t split = range_ >> 1;
    if (!bit) {
        range_ = split;
    } else {
        low_ += split;
        range_ -= split;
    }
    renormalize();
}

std::vector<uint8_t>
ArithEncoder::finish()
{
    M4PS_ASSERT(!finished_, "finish() called twice");
    finished_ = true;
    // Flush five bytes so the decoder can prime its code register.
    for (int i = 0; i < 5; ++i)
        shiftLow();
    return std::move(out_);
}

ArithDecoder::ArithDecoder(const uint8_t *data, size_t size)
    : data_(data), size_(size)
{
    // Prime with 5 bytes; the first is the encoder's dummy cache byte.
    for (int i = 0; i < 5; ++i)
        code_ = ((code_ << 8) | nextByte()) & 0xffffffffull;
}

uint8_t
ArithDecoder::nextByte()
{
    // Truncated streams read as zero; callers validate the payload.
    return pos_ < size_ ? data_[pos_++] : 0;
}

void
ArithDecoder::renormalize()
{
    while (range_ < kTop) {
        code_ = ((code_ << 8) | nextByte()) & 0xffffffffull;
        range_ <<= 8;
    }
}

bool
ArithDecoder::decodeBit(ArithContext &ctx)
{
    const uint32_t split = splitPoint(range_, ctx.p0);
    bool bit;
    if (static_cast<uint32_t>(code_) < split) {
        bit = false;
        range_ = split;
    } else {
        bit = true;
        code_ -= split;
        range_ -= split;
    }
    ctx.adapt(bit);
    renormalize();
    return bit;
}

bool
ArithDecoder::decodeBypass()
{
    const uint32_t split = range_ >> 1;
    bool bit;
    if (static_cast<uint32_t>(code_) < split) {
        bit = false;
        range_ = split;
    } else {
        bit = true;
        code_ -= split;
        range_ -= split;
    }
    renormalize();
    return bit;
}

} // namespace m4ps::codec
