/**
 * @file
 * Video object layer encoding/decoding: GOP structure, frame stores,
 * and the out-of-order VOP scheduling of the paper's Figure 1.
 *
 * "The VOPs are processed in the non-temporal order (I-VOP, P-VOP,
 * B-VOP1, B-VOP2, ...).  In other words, when the display order is
 * I, B1, B2, P, the encoding and decoding orders are both I, P, B1,
 * B2.  This out-of-order decoding increases the performance and
 * storage requirements for real-time playback" (paper §2.1).
 * VolEncoder buffers B-candidate frames until the next anchor;
 * VolDecoder holds anchors and re-establishes display order.
 */

#ifndef M4PS_CODEC_VOL_HH
#define M4PS_CODEC_VOL_HH

#include <memory>
#include <vector>

#include "codec/error.hh"
#include "codec/vop.hh"

namespace m4ps::codec
{

class RateController;

/** Group-of-pictures structure. */
struct GopConfig
{
    int intraPeriod = 12; //!< Distance between I-VOPs.
    int bFrames = 2;      //!< B-VOPs between anchors (M - 1).

    void validate() const;
};

/** Write the VOL startcode and configuration header. */
void writeVolHeader(bits::BitWriter &bw, const VolConfig &cfg);

/**
 * Read the VOL configuration following its startcode.
 *
 * Dimensions are validated against @p limits before the caller gets
 * a chance to allocate frame stores from them; violations throw
 * DecodeError (BadVolHeader or LimitExceeded).
 */
VolConfig readVolHeader(bits::BitReader &br, int vo_id, int vol_id,
                        const DecodeLimits &limits = DecodeLimits{});

/** Tight macroblock-aligned bounding box of an alpha plane. */
video::Rect alphaBBoxMb(const video::Plane &alpha);

/** A frame ready for display, with its timestamp. */
struct DisplayFrame
{
    int timestamp = 0;
    const video::Yuv420Image *frame = nullptr;
    const video::Plane *alpha = nullptr; //!< Null for rectangular VOLs.
};

/**
 * Encoder for one VOL: feeds display-order frames in, emits
 * coding-order VOPs.
 *
 * For enhancement layers (cfg.enhancement), use encodeEnhanced()
 * with the upsampled base-layer reconstruction; the GOP config is
 * ignored (every VOP is coded with the B machinery, in display
 * order).
 */
class VolEncoder
{
  public:
    VolEncoder(memsim::SimContext &ctx, const VolConfig &cfg,
               const GopConfig &gop, RateController *rc);

    /** Write the VOL header (call once before any frame). */
    void writeHeader(bits::BitWriter &bw);

    /**
     * Encode the next display-order frame.  May emit zero VOPs (the
     * frame was buffered as a B candidate) or 1 + bFrames VOPs (an
     * anchor plus the buffered B-VOPs).
     */
    std::vector<VopStats> encodeFrame(bits::BitWriter &bw,
                                      const video::Yuv420Image &frame,
                                      const video::Plane *alpha,
                                      int timestamp);

    /** Enhancement-layer path: code against the spatial reference. */
    VopStats encodeEnhanced(bits::BitWriter &bw,
                            const video::Yuv420Image &frame,
                            const video::Plane *alpha, int timestamp,
                            const video::Yuv420Image &spatial_ref);

    /** Encode any buffered frames at end of sequence (as P-VOPs). */
    std::vector<VopStats> flush(bits::BitWriter &bw);

    /** Reconstruction of the most recently coded anchor. */
    const video::Yuv420Image &lastAnchorRecon() const;

    const VolConfig &config() const { return cfg_; }

    /**
     * Checkpoint support: capture / restore all cross-frame encoder
     * state (reference reconstructions, buffered B candidates, GOP
     * position).  restoreState() requires a VolEncoder constructed
     * with the identical VolConfig/GopConfig - frame stores are
     * preallocated by the constructor and only their contents are
     * replayed - and throws support::SerializeError on any mismatch.
     */
    void saveState(support::StateWriter &sw) const;
    void restoreState(support::StateReader &sr);

  private:
    /**
     * Common VOP header fields, including the resilience flags
     * derived from the VOL config; the caller fills in qp.
     */
    VopHeader makeHeader(VopType type, int timestamp,
                         const video::Plane *alpha) const;

    VopStats encodeAnchor(bits::BitWriter &bw,
                          const video::Yuv420Image &frame,
                          const video::Plane *alpha, int timestamp,
                          VopType type);

    VopStats encodeB(bits::BitWriter &bw,
                     const video::Yuv420Image &frame,
                     const video::Plane *alpha, int timestamp);

    video::Rect vopWindow(const video::Plane *alpha) const;

    VolConfig cfg_;
    GopConfig gop_;
    RateController *rc_;
    VopEncoder vopEnc_;

    // Anchor reconstruction stores (flip-flop).
    video::Yuv420Image reconStore_[2];
    video::Plane alphaStore_[2];
    int curAnchor_ = -1;  //!< Index of the most recent anchor store.
    bool havePast_ = false;

    // Buffered B-candidate inputs.
    struct Pending
    {
        video::Yuv420Image frame;
        video::Plane alpha;
        int timestamp = 0;
        bool used = false;
    };
    std::vector<Pending> pending_;
    int numPending_ = 0;

    int frameCount_ = 0;

    // Enhancement chain.
    video::Yuv420Image enhRecon_[2];
    video::Plane enhAlpha_[2];
    int curEnh_ = -1;
    bool haveEnhPast_ = false;
};

/**
 * Decoder for one VOL: consumes coding-order VOPs, emits
 * display-order frames.
 */
class VolDecoder
{
  public:
    VolDecoder(memsim::SimContext &ctx, const VolConfig &cfg);

    /**
     * Decode one VOP (its header already parsed).  For enhancement
     * VOLs, @p spatial_ref must be the upsampled base reconstruction
     * at the same timestamp.  Returns 0..1 display frames.
     */
    std::vector<DisplayFrame> decodeVop(bits::BitReader &br,
                                        const VopHeader &hdr,
                                        const video::Yuv420Image
                                            *spatial_ref);

    /** Emit the held anchor at end of stream. */
    std::vector<DisplayFrame> flush();

    /** Frame written by the most recent decodeVop() call. */
    const video::Yuv420Image &lastDecoded() const;

    /** Accumulated statistics over all decoded VOPs. */
    const VopStats &totals() const { return totals_; }

    const VolConfig &config() const { return cfg_; }

  private:
    VolConfig cfg_;
    VopDecoder vopDec_;

    video::Yuv420Image anchorStore_[2];
    video::Plane anchorAlpha_[2];
    /** Precomputed half-pel luma planes per anchor store. */
    HalfPelPlanes anchorInterp_[2];
    int anchorTs_[2] = {-1, -1};
    int curAnchor_ = -1;   //!< Held (not yet displayed) anchor.
    int prevAnchor_ = -1;  //!< Older anchor (already displayed).

    video::Yuv420Image bStore_;
    video::Plane bAlpha_;

    const video::Yuv420Image *lastDecoded_ = nullptr;
    VopStats totals_;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_VOL_HH
