#include "codec/quant.hh"

#include <algorithm>
#include <cstdlib>

#include "support/logging.hh"

namespace m4ps::codec
{

const int kIntraMatrix[kBlockSize] = {
     8, 17, 18, 19, 21, 23, 25, 27,
    17, 18, 19, 21, 23, 25, 27, 28,
    20, 21, 22, 23, 24, 26, 28, 30,
    21, 22, 23, 24, 26, 28, 30, 32,
    22, 23, 24, 26, 28, 30, 32, 35,
    23, 24, 26, 28, 30, 32, 35, 38,
    25, 26, 28, 30, 32, 35, 38, 41,
    27, 28, 30, 32, 35, 38, 41, 45,
};

const int kInterMatrix[kBlockSize] = {
    16, 17, 18, 19, 20, 21, 22, 23,
    17, 18, 19, 20, 21, 22, 23, 24,
    18, 19, 20, 21, 22, 23, 24, 25,
    19, 20, 21, 22, 23, 24, 26, 27,
    20, 21, 22, 23, 25, 26, 27, 28,
    21, 22, 23, 24, 26, 27, 28, 30,
    22, 23, 24, 26, 27, 28, 30, 31,
    23, 24, 25, 27, 28, 30, 31, 33,
};

int
dcScaler(int qp, bool luma)
{
    M4PS_ASSERT(qp >= 1 && qp <= 31, "qp out of range: ", qp);
    if (luma) {
        if (qp <= 4)
            return 8;
        if (qp <= 8)
            return 2 * qp;
        if (qp <= 24)
            return qp + 8;
        return 2 * qp - 16;
    }
    if (qp <= 4)
        return 8;
    if (qp <= 24)
        return (qp + 13) / 2;
    return qp - 6;
}

namespace
{

int16_t
clampLevel(long v)
{
    return static_cast<int16_t>(std::clamp(v, -2047l, 2047l));
}

} // namespace

void
quantize(const Block &coefs, Block &levels, const QuantParams &qp)
{
    M4PS_ASSERT(qp.qp >= 1 && qp.qp <= 31, "qp out of range: ", qp.qp);
    const int q = qp.qp;
    int start = 0;
    if (qp.intra) {
        // Round to nearest, symmetric in sign.
        const int scaler = dcScaler(q, qp.luma);
        const int mag = (std::abs(coefs[0]) + scaler / 2) / scaler;
        levels[0] = clampLevel(coefs[0] < 0 ? -mag : mag);
        start = 1;
    }
    for (int i = start; i < kBlockSize; ++i) {
        const int c = coefs[i];
        const int mag = std::abs(c);
        long lvl;
        if (qp.mpegMatrix) {
            const int *mat = qp.intra ? kIntraMatrix : kInterMatrix;
            // Scale by the matrix weight, then quantize by 2q.
            const long scaled = 16l * mag / mat[i];
            lvl = qp.intra ? (scaled + q) / (2 * q)
                           : scaled / (2 * q);
        } else {
            // H.263 style: intra has no dead zone beyond truncation,
            // inter has a qp/2 dead zone.
            lvl = qp.intra ? mag / (2 * q)
                           : (mag - q / 2) / (2 * q);
            if (lvl < 0)
                lvl = 0;
        }
        levels[i] = clampLevel(c < 0 ? -lvl : lvl);
    }
}

void
dequantize(const Block &levels, Block &coefs, const QuantParams &qp)
{
    M4PS_ASSERT(qp.qp >= 1 && qp.qp <= 31, "qp out of range: ", qp.qp);
    const int q = qp.qp;
    int start = 0;
    if (qp.intra) {
        coefs[0] = static_cast<int16_t>(
            std::clamp(levels[0] * dcScaler(q, qp.luma), -2048, 2047));
        start = 1;
    }
    for (int i = start; i < kBlockSize; ++i) {
        const int lvl = levels[i];
        if (lvl == 0) {
            coefs[i] = 0;
            continue;
        }
        const int mag = std::abs(lvl);
        long c;
        if (qp.mpegMatrix) {
            const int *mat = qp.intra ? kIntraMatrix : kInterMatrix;
            c = (2l * mag * q * mat[i]) / 16;
            if (!qp.intra)
                c += (q * mat[i]) / 16; // mid-rise reconstruction
        } else {
            c = q * (2l * mag + 1);
            if (q % 2 == 0)
                c -= 1;
        }
        c = std::clamp(lvl < 0 ? -c : c, -2048l, 2047l);
        coefs[i] = static_cast<int16_t>(c);
    }
}

} // namespace m4ps::codec
