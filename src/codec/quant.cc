#include "codec/quant.hh"

#include <algorithm>
#include <cstdlib>

#include "codec/kernels/kernels.hh"
#include "support/logging.hh"

namespace m4ps::codec
{

const int kIntraMatrix[kBlockSize] = {
     8, 17, 18, 19, 21, 23, 25, 27,
    17, 18, 19, 21, 23, 25, 27, 28,
    20, 21, 22, 23, 24, 26, 28, 30,
    21, 22, 23, 24, 26, 28, 30, 32,
    22, 23, 24, 26, 28, 30, 32, 35,
    23, 24, 26, 28, 30, 32, 35, 38,
    25, 26, 28, 30, 32, 35, 38, 41,
    27, 28, 30, 32, 35, 38, 41, 45,
};

const int kInterMatrix[kBlockSize] = {
    16, 17, 18, 19, 20, 21, 22, 23,
    17, 18, 19, 20, 21, 22, 23, 24,
    18, 19, 20, 21, 22, 23, 24, 25,
    19, 20, 21, 22, 23, 24, 26, 27,
    20, 21, 22, 23, 25, 26, 27, 28,
    21, 22, 23, 24, 26, 27, 28, 30,
    22, 23, 24, 26, 27, 28, 30, 31,
    23, 24, 25, 27, 28, 30, 31, 33,
};

int
dcScaler(int qp, bool luma)
{
    M4PS_ASSERT(qp >= 1 && qp <= 31, "qp out of range: ", qp);
    if (luma) {
        if (qp <= 4)
            return 8;
        if (qp <= 8)
            return 2 * qp;
        if (qp <= 24)
            return qp + 8;
        return 2 * qp - 16;
    }
    if (qp <= 4)
        return 8;
    if (qp <= 24)
        return (qp + 13) / 2;
    return qp - 6;
}

namespace
{

int16_t
clampLevel(long v)
{
    return static_cast<int16_t>(std::clamp(v, -2047l, 2047l));
}

kernels::QuantArgs
kernelArgs(const QuantParams &qp)
{
    kernels::QuantArgs qa;
    qa.q = qp.qp;
    qa.intra = qp.intra;
    qa.mpeg = qp.mpegMatrix;
    qa.matrix = qp.intra ? kIntraMatrix : kInterMatrix;
    return qa;
}

} // namespace

void
quantize(const Block &coefs, Block &levels, const QuantParams &qp)
{
    M4PS_ASSERT(qp.qp >= 1 && qp.qp <= 31, "qp out of range: ", qp.qp);
    int start = 0;
    if (qp.intra) {
        // The DC coefficient uses its own scaler; round to nearest,
        // symmetric in sign.
        const int scaler = dcScaler(qp.qp, qp.luma);
        const int mag = (std::abs(coefs[0]) + scaler / 2) / scaler;
        levels[0] = clampLevel(coefs[0] < 0 ? -mag : mag);
        start = 1;
    }
    kernels::active().quant(coefs.data(), levels.data(), start,
                            kernelArgs(qp));
}

void
dequantize(const Block &levels, Block &coefs, const QuantParams &qp)
{
    M4PS_ASSERT(qp.qp >= 1 && qp.qp <= 31, "qp out of range: ", qp.qp);
    int start = 0;
    if (qp.intra) {
        coefs[0] = static_cast<int16_t>(std::clamp(
            levels[0] * dcScaler(qp.qp, qp.luma), -2048, 2047));
        start = 1;
    }
    kernels::active().dequant(levels.data(), coefs.data(), start,
                              kernelArgs(qp));
}

} // namespace m4ps::codec
