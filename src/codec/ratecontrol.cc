#include "codec/ratecontrol.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/serialize.hh"

namespace m4ps::codec
{

RateController::RateController(double target_bps, double frame_rate,
                               int initial_qp)
    : budget_(target_bps / std::max(frame_rate, 1e-9)),
      qp_(std::clamp(initial_qp, 1, 31))
{
    M4PS_ASSERT(target_bps > 0, "target bitrate must be positive");
}

int
RateController::qpForVop(VopType type) const
{
    // B-VOPs are quantized more coarsely, I-VOPs slightly finer -
    // the usual I/P/B ladder.
    int qp = qp_;
    switch (type) {
      case VopType::I:
        qp -= 1;
        break;
      case VopType::P:
        break;
      case VopType::B:
        qp += 2;
        break;
    }
    return std::clamp(qp, 1, 31);
}

void
RateController::update(uint64_t bits_used)
{
    fullness_ += static_cast<double>(bits_used) - budget_;
    // Step the quantizer proportionally to buffer pressure: small
    // errors move one notch, gross mismatches converge in a few
    // frames instead of tens.
    const double pressure = fullness_ / budget_;
    auto step_for = [](double p) {
        if (p > 8)
            return 4;
        if (p > 3)
            return 2;
        if (p > 1)
            return 1;
        return 0;
    };
    if (pressure > 0)
        qp_ = std::min(qp_ + step_for(pressure), 31);
    else
        qp_ = std::max(qp_ - step_for(-pressure), 1);
    // Leak the buffer slightly so a long-past burst does not pin the
    // quantizer forever.
    fullness_ *= 0.995;
}

void
RateController::scaleBudget(double factor)
{
    // Keep the budget usable: never below one bit per frame, and a
    // non-positive factor is a caller bug, not a rate of zero.
    budget_ = std::max(budget_ * std::max(factor, 1e-3), 1.0);
}

void
RateController::saveState(support::StateWriter &sw) const
{
    sw.f64(fullness_);
    sw.i32(qp_);
}

void
RateController::restoreState(support::StateReader &sr)
{
    fullness_ = sr.f64();
    qp_ = sr.i32();
    if (qp_ < 1 || qp_ > 31)
        throw support::SerializeError("rate controller qp out of range");
}

} // namespace m4ps::codec
