#include "codec/motion.hh"

#include "codec/interp.hh"
#include "codec/kernels/kernels.hh"

#include <algorithm>
#include <cstdlib>

#include "support/logging.hh"

namespace m4ps::codec
{

namespace
{

constexpr int kMb = 16;

/** H.263 chroma rounding: v/2 with 0.5 rounded toward +-1. */
int
chromaComponent(int v)
{
    const int mag = std::abs(v);
    const int r = (mag >> 1) | (mag & 1);
    return v < 0 ? -r : r;
}

} // namespace

MotionVector
chromaVector(MotionVector luma_mv)
{
    return {chromaComponent(luma_mv.x), chromaComponent(luma_mv.y)};
}

// The pel loops below all go through the kernel dispatch table
// (codec/kernels/); the memsim trace calls and the row-level early
// exit stay here so the simulated access stream is identical for
// every backend (kernels.hh contract 2).

int
sad16(const video::Plane &cur, int cx, int cy,
      const video::Plane &ref, int rx, int ry, int best)
{
    const kernels::KernelOps &k = kernels::active();
    int acc = 0;
    for (int row = 0; row < kMb; ++row) {
        cur.traceLoadRow(cx, cy + row, kMb);
        ref.traceLoadRow(rx, ry + row, kMb);
        acc += k.sadRow16(cur.rowPtr(cy + row) + cx,
                          ref.rowPtr(ry + row) + rx);
        // Row-level early exit, as in the reference software.
        if (acc >= best)
            return acc;
    }
    return acc;
}

int
sad8(const video::Plane &cur, int cx, int cy,
     const video::Plane &ref, int rx, int ry, int best)
{
    const kernels::KernelOps &k = kernels::active();
    int acc = 0;
    for (int row = 0; row < 8; ++row) {
        cur.traceLoadRow(cx, cy + row, 8);
        ref.traceLoadRow(rx, ry + row, 8);
        acc += k.sadRow8(cur.rowPtr(cy + row) + cx,
                         ref.rowPtr(ry + row) + rx);
        if (acc >= best)
            return acc;
    }
    return acc;
}

namespace
{

/** sad8 at a half-pel position (hx, hy in {0, 1}). */
int
sad8HalfPel(const video::Plane &cur, int cx, int cy,
            const video::Plane &ref, int rx, int ry, int hx, int hy,
            int best)
{
    const kernels::KernelOps &k = kernels::active();
    int acc = 0;
    const int extra_x = hx ? 1 : 0;
    const int extra_y = hy ? 1 : 0;
    for (int row = 0; row < 8; ++row) {
        cur.traceLoadRow(cx, cy + row, 8);
        ref.traceLoadRow(rx, ry + row, 8 + extra_x);
        if (extra_y)
            ref.traceLoadRow(rx, ry + row + 1, 8 + extra_x);
        acc += k.sadRowHpel8(cur.rowPtr(cy + row) + cx,
                             ref.rowPtr(ry + row) + rx,
                             ref.rowPtr(ry + row + extra_y) + rx,
                             hx, hy);
        if (acc >= best)
            return acc;
    }
    return acc;
}

} // namespace

SearchResult
motionSearch8(const video::Plane &cur, const video::Plane &ref,
              int bx, int by, MotionVector around, int range,
              bool half_pel)
{
    const int cx = bx + around.x / 2;
    const int cy = by + around.y / 2;
    const int x_lo = std::max(cx - range, 0);
    const int y_lo = std::max(cy - range, 0);
    const int x_hi = std::min(cx + range, ref.width() - 8);
    const int y_hi = std::min(cy + range, ref.height() - 8);

    SearchResult best;
    best.mv = {0, 0};
    best.sad = sad8(cur, bx, by, ref, bx, by, INT32_MAX);
    for (int ry = y_lo; ry <= y_hi; ++ry) {
        for (int rx = x_lo; rx <= x_hi; ++rx) {
            if (rx == bx && ry == by)
                continue;
            const int sad = sad8(cur, bx, by, ref, rx, ry, best.sad);
            if (sad < best.sad) {
                best.sad = sad;
                best.mv = {2 * (rx - bx), 2 * (ry - by)};
            }
        }
    }
    if (!half_pel)
        return best;

    SearchResult refined = best;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0)
                continue;
            const int hvx = best.mv.x + dx;
            const int hvy = best.mv.y + dy;
            const int bx2 = bx + (hvx >> 1);
            const int by2 = by + (hvy >> 1);
            const int hx = hvx & 1;
            const int hy = hvy & 1;
            if (bx2 < 0 || by2 < 0 ||
                bx2 + 8 + (hx ? 1 : 0) > ref.width() ||
                by2 + 8 + (hy ? 1 : 0) > ref.height()) {
                continue;
            }
            const int sad = sad8HalfPel(cur, bx, by, ref, bx2, by2,
                                        hx, hy, refined.sad);
            if (sad < refined.sad) {
                refined.sad = sad;
                refined.mv = {hvx, hvy};
            }
        }
    }
    return refined;
}

namespace
{

/**
 * SAD at a half-pel position.  (hx, hy) are the half-pel offsets
 * (0 or 1) added to the full-pel base (rx, ry); interpolation reads
 * one extra row/column.
 */
int
sad16HalfPel(const video::Plane &cur, int cx, int cy,
             const video::Plane &ref, int rx, int ry, int hx, int hy,
             int best)
{
    const kernels::KernelOps &k = kernels::active();
    int acc = 0;
    const int extra_x = hx ? 1 : 0;
    const int extra_y = hy ? 1 : 0;
    for (int row = 0; row < kMb; ++row) {
        cur.traceLoadRow(cx, cy + row, kMb);
        ref.traceLoadRow(rx, ry + row, kMb + extra_x);
        if (extra_y)
            ref.traceLoadRow(rx, ry + row + 1, kMb + extra_x);
        acc += k.sadRowHpel16(cur.rowPtr(cy + row) + cx,
                              ref.rowPtr(ry + row) + rx,
                              ref.rowPtr(ry + row + extra_y) + rx,
                              hx, hy);
        if (acc >= best)
            return acc;
    }
    return acc;
}

} // namespace

SearchResult
motionSearch(const video::Plane &cur, const video::Plane &ref,
             int bx, int by, int range, bool half_pel)
{
    M4PS_ASSERT(range >= 0, "negative search range");
    // Restrict candidates so the 16x16 block (plus the half-pel
    // interpolation border) stays inside the reference plane.
    const int x_lo = std::max(bx - range, 0);
    const int y_lo = std::max(by - range, 0);
    const int x_hi = std::min(bx + range, ref.width() - kMb);
    const int y_hi = std::min(by + range, ref.height() - kMb);

    SearchResult best;
    best.sad = INT32_MAX;
    // Raster-order scan with an offset of one pixel between searches
    // (paper §3.2); zero-displacement bias checked first.
    const int zero_sad = sad16(cur, bx, by, ref, bx, by, INT32_MAX);
    best.sad = zero_sad;
    best.mv = {0, 0};

    for (int ry = y_lo; ry <= y_hi; ++ry) {
        // Conservative compiler-style prefetch: the next candidate
        // row will read reference row ry + 16 for the first time.
        if (ry + 1 <= y_hi)
            ref.prefetch(std::min(x_hi + kMb - 1, ref.width() - 1),
                         std::min(ry + kMb, ref.height() - 1));
        for (int rx = x_lo; rx <= x_hi; ++rx) {
            if (rx == bx && ry == by)
                continue; // already evaluated
            const int sad = sad16(cur, bx, by, ref, rx, ry, best.sad);
            if (sad < best.sad) {
                best.sad = sad;
                best.mv = {2 * (rx - bx), 2 * (ry - by)};
            }
        }
    }

    if (!half_pel)
        return best;

    // Half-pel refinement around the full-pel optimum.  Positive
    // half-pel offsets need one extra sample right/below; negative
    // offsets are expressed as (full-pel - 1) + positive half.
    SearchResult refined = best;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0)
                continue;
            // Candidate half-pel vector.
            const int hvx = best.mv.x + dx;
            const int hvy = best.mv.y + dy;
            // Full-pel base for interpolation (floor of half coord).
            const int bx2 = bx + (hvx >> 1);
            const int by2 = by + (hvy >> 1);
            const int hx = hvx & 1;
            const int hy = hvy & 1;
            if (bx2 < 0 || by2 < 0 ||
                bx2 + kMb + (hx ? 1 : 0) > ref.width() ||
                by2 + kMb + (hy ? 1 : 0) > ref.height()) {
                continue;
            }
            const int sad = sad16HalfPel(cur, bx, by, ref, bx2, by2,
                                         hx, hy, refined.sad);
            if (sad < refined.sad) {
                refined.sad = sad;
                refined.mv = {hvx, hvy};
            }
        }
    }
    return refined;
}

void
blockActivity16(const video::Plane &cur, int bx, int by,
                int &mean, int &deviation)
{
    const kernels::KernelOps &k = kernels::active();
    int sum = 0;
    for (int row = 0; row < kMb; ++row) {
        cur.traceLoadRow(bx, by + row, kMb);
        sum += k.sumRow16(cur.rowPtr(by + row) + bx);
    }
    mean = (sum + 128) >> 8;
    int dev = 0;
    for (int row = 0; row < kMb; ++row) {
        cur.traceLoadRow(bx, by + row, kMb);
        dev += k.absDevRow16(cur.rowPtr(by + row) + bx,
                             static_cast<uint8_t>(mean));
    }
    deviation = dev;
}

namespace
{

/** Generic motion-compensated block fetch with bilinear half-pel. */
void
predictBlock(const video::Plane &ref, int bx, int by, MotionVector mv,
             int edge, uint8_t *out)
{
    const kernels::KernelOps &k = kernels::active();
    // Clamp the displaced block inside the plane; vectors produced by
    // motionSearch() already satisfy this, chroma vectors may need a
    // final clamp at the borders.
    int x0 = bx + (mv.x >> 1);
    int y0 = by + (mv.y >> 1);
    const int hx = mv.x & 1;
    const int hy = mv.y & 1;
    const int need_x = edge + (hx ? 1 : 0);
    const int need_y = edge + (hy ? 1 : 0);
    x0 = std::clamp(x0, 0, ref.width() - need_x);
    y0 = std::clamp(y0, 0, ref.height() - need_y);

    for (int row = 0; row < edge; ++row) {
        ref.traceLoadRow(x0, y0 + row, need_x);
        if (hy)
            ref.traceLoadRow(x0, y0 + row + 1, need_x);
        k.predictRow(ref.rowPtr(y0 + row) + x0,
                     ref.rowPtr(y0 + row + (hy ? 1 : 0)) + x0,
                     hx, hy, edge, out + row * edge);
    }
}

} // namespace

void
predictLuma16(const video::Plane &ref, int bx, int by, MotionVector mv,
              uint8_t *out)
{
    // Model the decoder-side compiler prefetch of the next block row.
    ref.prefetch(bx + (mv.x >> 1), by + (mv.y >> 1) + kMb);
    predictBlock(ref, bx, by, mv, kMb, out);
}

void
predictLuma8(const video::Plane &ref, int bx, int by, MotionVector mv,
             uint8_t *out)
{
    predictBlock(ref, bx, by, mv, 8, out);
}

void
predictLuma16FromInterp(const video::Plane &base,
                        const HalfPelPlanes &interp, int bx, int by,
                        MotionVector mv, uint8_t *out)
{
    const kernels::KernelOps &k = kernels::active();
    const int hx = mv.x & 1;
    const int hy = mv.y & 1;
    // Same clamp as predictBlock() so both paths pick the same
    // source block even at the borders.
    int x0 = bx + (mv.x >> 1);
    int y0 = by + (mv.y >> 1);
    x0 = std::clamp(x0, 0, base.width() - (kMb + (hx ? 1 : 0)));
    y0 = std::clamp(y0, 0, base.height() - (kMb + (hy ? 1 : 0)));

    const video::Plane *src = interp.phase(hx, hy);
    if (!src)
        src = &base;
    src->prefetch(x0, y0 + kMb);
    for (int row = 0; row < kMb; ++row) {
        src->traceLoadRow(x0, y0 + row, kMb);
        k.copyRow(src->rowPtr(y0 + row) + x0, kMb, out + row * kMb);
    }
}

void
predictChroma8(const video::Plane &ref, int bx, int by,
               MotionVector luma_mv, uint8_t *out)
{
    predictBlock(ref, bx, by, chromaVector(luma_mv), 8, out);
}

void
averagePrediction(const uint8_t *a, const uint8_t *b, int n, uint8_t *out)
{
    kernels::active().avgRow(a, b, n, out);
}

} // namespace m4ps::codec
