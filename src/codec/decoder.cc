#include "codec/decoder.hh"

#include "bitstream/expgolomb.hh"
#include "bitstream/startcode.hh"
#include "codec/error.hh"
#include "support/logging.hh"
#include "support/obs/obs.hh"
#include "video/resample.hh"

namespace m4ps::codec
{

namespace
{

/** Preserve the kind of an escaping DecodeError; classify the rest. */
DecodeError
asDecodeError(const StreamError &e, DecodeErrorKind fallback)
{
    if (const auto *de = dynamic_cast<const DecodeError *>(&e))
        return *de;
    return DecodeError(fallback, e.what());
}

/**
 * Frame-store footprint one VolDecoder implies for @p cfg: two
 * anchors, the B store, half-pel planes, and (for enhancement
 * chains) the upsampled base - roughly 12 bytes per luma pixel.
 */
uint64_t
estimateFrameStoreBytes(const VolConfig &cfg)
{
    return static_cast<uint64_t>(cfg.width) * cfg.height * 12;
}

} // namespace

Mpeg4Decoder::Mpeg4Decoder(memsim::SimContext &ctx) : ctx_(ctx) {}

void
Mpeg4Decoder::parseHeaders(bits::BitReader &br, std::vector<VoState> &vos,
                           int &layers, DecodeStats &stats,
                           const DecodeOptions &opts)
{
    const DecodeLimits &limits = opts.limits;
    auto checkBudget = [&] {
        if (br.bitPos() > limits.maxHeaderBits)
            throw DecodeError(DecodeErrorKind::LimitExceeded,
                              "header section exceeds its bit budget");
    };

    auto code = bits::nextStartCode(br);
    checkBudget();
    if (!code ||
        *code != static_cast<uint8_t>(
                     bits::StartCode::VisualObjectSequence)) {
        throw DecodeError(DecodeErrorKind::BadSequenceHeader,
                          "stream does not begin with a VOS startcode");
    }
    const int num_vos = static_cast<int>(bits::getUe(br));
    if (br.overrun() || num_vos < 1 || num_vos > limits.maxVos)
        throw DecodeError(DecodeErrorKind::BadSequenceHeader,
                          "corrupt VO count " + std::to_string(num_vos));
    stats.vos = num_vos;
    vos.resize(num_vos);

    for (int v = 0; v < num_vos; ++v) {
        code = bits::nextStartCode(br);
        checkBudget();
        if (!code || !bits::isVoCode(*code) || *code != v) {
            throw DecodeError(DecodeErrorKind::BadVoHeader,
                              "expected VO startcode for VO " +
                                  std::to_string(v));
        }
        const int vo_layers = static_cast<int>(bits::getUe(br));
        if (br.overrun() || vo_layers < 1 ||
            vo_layers > limits.maxLayersPerVo) {
            throw DecodeError(DecodeErrorKind::BadVoHeader,
                              "corrupt layer count " +
                                  std::to_string(vo_layers));
        }
        if (layers == 0)
            layers = vo_layers;
        else if (layers != vo_layers)
            throw DecodeError(DecodeErrorKind::BadVoHeader,
                              "VOs with differing layer counts");

        for (int l = 0; l < vo_layers; ++l) {
            code = bits::nextStartCode(br);
            checkBudget();
            if (!code || !bits::isVolCode(*code))
                throw DecodeError(DecodeErrorKind::BadVolHeader,
                                  "expected VOL startcode");
            const int vol_id =
                *code - static_cast<uint8_t>(
                            bits::StartCode::VideoObjectLayer);
            VolConfig cfg = readVolHeader(br, v, vol_id, limits);
            // Layer roles are part of the syntax: a base layer that
            // claims to be an enhancement layer (or vice versa) would
            // otherwise trip internal invariants during VOP decode.
            if (l == 0 && cfg.enhancement)
                throw DecodeError(DecodeErrorKind::BadVolHeader,
                                  "layer 0 cannot be an enhancement "
                                  "layer");
            if (l == 1 && !cfg.enhancement)
                throw DecodeError(DecodeErrorKind::BadVolHeader,
                                  "layer 1 must be an enhancement "
                                  "layer");
            if (estimateFrameStoreBytes(cfg) > limits.maxFrameStoreBytes)
                throw DecodeError(DecodeErrorKind::LimitExceeded,
                                  "VOL frame stores exceed the decode "
                                  "limit");
            auto dec = std::make_unique<VolDecoder>(ctx_, cfg);
            if (l == 0) {
                vos[v].base = std::move(dec);
            } else {
                vos[v].enh = std::move(dec);
                // Sized from the (possibly padded) base layer; may
                // exceed the enhancement frame.
                const VolConfig &bcfg = vos[v].base->config();
                vos[v].upsampled = video::Yuv420Image(
                    ctx_, 2 * bcfg.width, 2 * bcfg.height);
            }
        }
    }
}

DecodeStats
Mpeg4Decoder::decode(const std::vector<uint8_t> &stream, const Sink &sink,
                     bool tolerant)
{
    DecodeOptions opts;
    opts.tolerant = tolerant;
    return decode(stream, sink, opts);
}

DecodeStats
Mpeg4Decoder::decode(const std::vector<uint8_t> &stream, const Sink &sink,
                     const DecodeOptions &opts)
{
    bits::BitReader br(stream);
    DecodeStats stats;

    obs::Span streamSpan("codec", "dec.stream");
    if (streamSpan.active())
        streamSpan.setArgs("{\"bytes\":" +
                           std::to_string(stream.size()) + "}");
    static obs::Counter &streamsC = obs::counter("dec.streams");
    streamsC.add();

    auto record = [&stats](const DecodeError &e, uint64_t pos) {
        if (stats.incidents.size() < kMaxIncidents)
            stats.incidents.push_back({e.kind(), pos, e.what()});
    };

    // ---- sequence header -------------------------------------------
    std::vector<VoState> vos;
    int layers = 0;
    try {
        parseHeaders(br, vos, layers, stats, opts);
    } catch (const StreamError &e) {
        const DecodeError de =
            asDecodeError(e, DecodeErrorKind::BadSequenceHeader);
        if (!opts.tolerant)
            throw de;
        // Keep whatever parsed; VOPs aimed at the missing structure
        // are counted as corrupt below.
        ++stats.headerErrors;
        record(de, br.bitPos());
    }
    stats.volsPerVo = layers;
    const int num_vos = static_cast<int>(vos.size());

    auto emit = [&](int vo, int vol,
                    const std::vector<DisplayFrame> &frames) {
        for (const DisplayFrame &f : frames) {
            ++stats.displayed;
            if (sink)
                sink({vo, vol, f.timestamp, f.frame, f.alpha});
        }
    };

    // ---- VOPs -------------------------------------------------------
    while (true) {
        auto code = bits::nextStartCode(br);
        if (!code ||
            *code == static_cast<uint8_t>(
                         bits::StartCode::VisualObjectSequenceEnd)) {
            break;
        }
        if (!bits::isVopCode(*code)) {
            // Unknown section: resynchronize at the next startcode.
            continue;
        }
        const bool packetized =
            *code == static_cast<uint8_t>(bits::StartCode::VopResilient);
        const uint64_t vop_start = br.bitPos();
        try {
            VopHeader hdr = readVopHeader(br, packetized);
            if (br.overrun())
                throw StreamError("truncated VOP header");
            if (hdr.voId < 0 || hdr.voId >= num_vos)
                throw StreamError("VOP references an unknown VO");
            VoState &vo = vos[hdr.voId];
            if (hdr.volId < 0 || hdr.volId >= layers)
                throw StreamError("VOP references an unknown layer");
            ++stats.vops;

            if (hdr.volId == 0) {
                if (!vo.base)
                    throw StreamError("VOP for a VO whose VOL header "
                                      "was lost");
                auto frames = vo.base->decodeVop(br, hdr, nullptr);
                if (layers == 1) {
                    emit(hdr.voId, 0, frames);
                } else {
                    // Base display is superseded by the enhancement
                    // layer; remember which frame was just written so
                    // the enhancement VOP can predict from it.
                    vo.lastBaseTs = hdr.timestamp;
                }
            } else {
                if (!vo.base || !vo.enh)
                    throw StreamError("VOP for a VO whose VOL header "
                                      "was lost");
                if (vo.lastBaseTs != hdr.timestamp) {
                    throw StreamError(
                        "enhancement VOP without matching base VOP");
                }
                video::upsampleFrame(vo.base->lastDecoded(),
                                     vo.upsampled);
                auto frames = vo.enh->decodeVop(br, hdr, &vo.upsampled);
                emit(hdr.voId, 1, frames);
            }
        } catch (const StreamError &e) {
            const DecodeError de =
                asDecodeError(e, DecodeErrorKind::CorruptVop);
            if (!opts.tolerant)
                throw de;
            // Conceal: skip this section; the next nextStartCode()
            // call resynchronizes, and the frame stores keep their
            // previous (or partially decoded) content.
            ++stats.corruptedVops;
            record(de, vop_start);
        }
        stats.totalBits += br.bitPos() - vop_start;
    }

    // ---- end of stream: flush held anchors --------------------------
    for (int v = 0; v < num_vos; ++v) {
        if (!vos[v].base)
            continue;
        if (layers == 1) {
            emit(v, 0, vos[v].base->flush());
        } else if (vos[v].enh) {
            emit(v, 1, vos[v].enh->flush());
        }
        stats.mb += vos[v].base->totals();
        if (vos[v].enh)
            stats.mb += vos[v].enh->totals();
    }

    static obs::Counter &displayedC = obs::counter("dec.displayed");
    static obs::Counter &corruptVopsC =
        obs::counter("dec.corrupted_vops");
    displayedC.add(static_cast<uint64_t>(stats.displayed));
    corruptVopsC.add(static_cast<uint64_t>(stats.corruptedVops));
    return stats;
}

} // namespace m4ps::codec
