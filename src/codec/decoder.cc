#include "codec/decoder.hh"

#include "bitstream/expgolomb.hh"
#include "bitstream/startcode.hh"
#include "codec/error.hh"
#include "support/logging.hh"
#include "video/resample.hh"

namespace m4ps::codec
{

Mpeg4Decoder::Mpeg4Decoder(memsim::SimContext &ctx) : ctx_(ctx) {}

DecodeStats
Mpeg4Decoder::decode(const std::vector<uint8_t> &stream, const Sink &sink,
                     bool tolerant)
{
    bits::BitReader br(stream);
    DecodeStats stats;

    // ---- sequence header -------------------------------------------
    auto code = bits::nextStartCode(br);
    if (!code ||
        *code != static_cast<uint8_t>(
                     bits::StartCode::VisualObjectSequence)) {
        M4PS_FATAL("stream does not begin with a VOS startcode");
    }
    const int num_vos = static_cast<int>(bits::getUe(br));
    if (num_vos < 1 || num_vos > 16)
        M4PS_FATAL("corrupt VO count ", num_vos);
    stats.vos = num_vos;

    std::vector<VoState> vos(num_vos);
    int layers = 0;
    for (int v = 0; v < num_vos; ++v) {
        code = bits::nextStartCode(br);
        if (!code || !bits::isVoCode(*code) || *code != v)
            M4PS_FATAL("expected VO startcode for VO ", v);
        const int vo_layers = static_cast<int>(bits::getUe(br));
        if (vo_layers < 1 || vo_layers > 2)
            M4PS_FATAL("corrupt layer count ", vo_layers);
        if (layers == 0)
            layers = vo_layers;
        else if (layers != vo_layers)
            M4PS_FATAL("VOs with differing layer counts");

        for (int l = 0; l < vo_layers; ++l) {
            code = bits::nextStartCode(br);
            if (!code || !bits::isVolCode(*code))
                M4PS_FATAL("expected VOL startcode");
            const int vol_id =
                *code - static_cast<uint8_t>(
                            bits::StartCode::VideoObjectLayer);
            VolConfig cfg = readVolHeader(br, v, vol_id);
            auto dec = std::make_unique<VolDecoder>(ctx_, cfg);
            if (l == 0) {
                vos[v].base = std::move(dec);
            } else {
                M4PS_ASSERT(cfg.enhancement,
                            "layer 1 must be an enhancement layer");
                vos[v].enh = std::move(dec);
                // Sized from the (possibly padded) base layer; may
                // exceed the enhancement frame.
                const VolConfig &bcfg = vos[v].base->config();
                vos[v].upsampled = video::Yuv420Image(
                    ctx_, 2 * bcfg.width, 2 * bcfg.height);
            }
        }
    }
    stats.volsPerVo = layers;

    auto emit = [&](int vo, int vol,
                    const std::vector<DisplayFrame> &frames) {
        for (const DisplayFrame &f : frames) {
            ++stats.displayed;
            if (sink)
                sink({vo, vol, f.timestamp, f.frame, f.alpha});
        }
    };

    // ---- VOPs -------------------------------------------------------
    while (true) {
        code = bits::nextStartCode(br);
        if (!code ||
            *code == static_cast<uint8_t>(
                         bits::StartCode::VisualObjectSequenceEnd)) {
            break;
        }
        if (*code != static_cast<uint8_t>(bits::StartCode::Vop)) {
            // Unknown section: resynchronize at the next startcode.
            continue;
        }
        const uint64_t vop_start = br.bitPos();
        try {
            VopHeader hdr = readVopHeader(br);
            if (br.overrun())
                throw StreamError("truncated VOP header");
            if (hdr.voId < 0 || hdr.voId >= num_vos)
                throw StreamError("VOP references an unknown VO");
            VoState &vo = vos[hdr.voId];
            if (hdr.volId < 0 || hdr.volId >= layers)
                throw StreamError("VOP references an unknown layer");
            ++stats.vops;

            if (hdr.volId == 0) {
                auto frames = vo.base->decodeVop(br, hdr, nullptr);
                if (layers == 1) {
                    emit(hdr.voId, 0, frames);
                } else {
                    // Base display is superseded by the enhancement
                    // layer; remember which frame was just written so
                    // the enhancement VOP can predict from it.
                    vo.lastBaseTs = hdr.timestamp;
                }
            } else {
                if (vo.lastBaseTs != hdr.timestamp) {
                    throw StreamError(
                        "enhancement VOP without matching base VOP");
                }
                video::upsampleFrame(vo.base->lastDecoded(),
                                     vo.upsampled);
                auto frames = vo.enh->decodeVop(br, hdr, &vo.upsampled);
                emit(hdr.voId, 1, frames);
            }
        } catch (const StreamError &e) {
            if (!tolerant)
                M4PS_FATAL("corrupt stream: ", e.what());
            // Conceal: skip this section; the next nextStartCode()
            // call resynchronizes, and the frame stores keep their
            // previous (or partially decoded) content.
            ++stats.corruptedVops;
        }
        stats.totalBits += br.bitPos() - vop_start;
    }

    // ---- end of stream: flush held anchors --------------------------
    for (int v = 0; v < num_vos; ++v) {
        if (layers == 1) {
            emit(v, 0, vos[v].base->flush());
        } else {
            emit(v, 1, vos[v].enh->flush());
        }
        stats.mb += vos[v].base->totals();
        if (vos[v].enh)
            stats.mb += vos[v].enh->totals();
    }
    return stats;
}

} // namespace m4ps::codec
