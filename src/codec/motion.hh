/**
 * @file
 * Motion estimation and compensation.
 *
 * The encoder's motion estimation - "responsible for the majority of
 * the program execution time" (paper §3.2) - searches a restricted
 * window around each 16x16 macroblock for the reference block with
 * the minimum sum of absolute differences (SAD), moving the search
 * position one pixel at a time.  The overlap between consecutive
 * searches is what generates the high L1 locality the paper reports.
 *
 * Full-pel full search plus half-pel refinement, and block prediction
 * (motion compensation) with bilinear half-sample interpolation.
 */

#ifndef M4PS_CODEC_MOTION_HH
#define M4PS_CODEC_MOTION_HH

#include <cstdint>

#include "video/plane.hh"

namespace m4ps::codec
{
class HalfPelPlanes;
}

namespace m4ps::codec
{

/** A motion vector in half-pel units. */
struct MotionVector
{
    int x = 0;
    int y = 0;

    bool operator==(const MotionVector &o) const = default;
    bool isZero() const { return x == 0 && y == 0; }
};

/** Result of a block search. */
struct SearchResult
{
    MotionVector mv;   //!< Best vector, half-pel units.
    int sad = 0;       //!< SAD at the best position.
};

/**
 * SAD between the 16x16 block of @p cur at (@p cx, @p cy) and the
 * block of @p ref at (@p rx, @p ry), with row-level early exit once
 * the partial sum reaches @p best.  All pixel reads are traced.
 */
int sad16(const video::Plane &cur, int cx, int cy,
          const video::Plane &ref, int rx, int ry, int best);

/**
 * Full search over the restricted window [-range, +range]^2 (clipped
 * to the reference plane), followed by half-pel refinement around the
 * full-pel optimum when @p half_pel is set.
 *
 * Issues one software prefetch per window row, modelling the
 * conservative compiler-generated prefetching the paper observes.
 */
SearchResult motionSearch(const video::Plane &cur,
                          const video::Plane &ref,
                          int bx, int by, int range, bool half_pel);

/**
 * SAD between the 8x8 block of @p cur at (@p cx, @p cy) and the
 * block of @p ref at (@p rx, @p ry); early exit at @p best.
 */
int sad8(const video::Plane &cur, int cx, int cy,
         const video::Plane &ref, int rx, int ry, int best);

/**
 * Refinement search for one 8x8 luma block (INTER4V mode): full-pel
 * candidates within @p range of the 16x16 vector @p around, plus
 * half-pel refinement.  Vectors are restricted exactly like
 * motionSearch().
 */
SearchResult motionSearch8(const video::Plane &cur,
                           const video::Plane &ref, int bx, int by,
                           MotionVector around, int range,
                           bool half_pel);

/**
 * Mean and mean-absolute-deviation of the 16x16 block at
 * (@p bx, @p by); used by the intra/inter mode decision.  Traced.
 */
void blockActivity16(const video::Plane &cur, int bx, int by,
                     int &mean, int &deviation);

/**
 * Motion-compensated 16x16 luma prediction: read the displaced block
 * of @p ref (half-pel bilinear when the vector has half-pel parts)
 * into @p out (row-major, 16x16).  Traced reference reads.
 */
void predictLuma16(const video::Plane &ref, int bx, int by,
                   MotionVector mv, uint8_t *out);

/**
 * Motion-compensated 8x8 luma prediction (INTER4V blocks).
 */
void predictLuma8(const video::Plane &ref, int bx, int by,
                  MotionVector mv, uint8_t *out);

/**
 * Motion-compensated 16x16 luma prediction served from precomputed
 * half-pel planes (see codec/interp.hh).  Produces bit-identical
 * output to predictLuma16().
 */
void predictLuma16FromInterp(const video::Plane &base,
                             const class HalfPelPlanes &interp,
                             int bx, int by, MotionVector mv,
                             uint8_t *out);

/**
 * Motion-compensated 8x8 chroma prediction at chroma coordinates
 * (@p bx, @p by) using the chroma vector derived from the luma
 * vector per H.263 rounding.
 */
void predictChroma8(const video::Plane &ref, int bx, int by,
                    MotionVector luma_mv, uint8_t *out);

/** Chroma half-pel vector derived from a luma half-pel vector. */
MotionVector chromaVector(MotionVector luma_mv);

/** Average two predictions (B-VOP bidirectional mode), rounding up. */
void averagePrediction(const uint8_t *a, const uint8_t *b, int n,
                       uint8_t *out);

} // namespace m4ps::codec

#endif // M4PS_CODEC_MOTION_HH
