#include "codec/vol.hh"

#include "bitstream/expgolomb.hh"
#include "bitstream/startcode.hh"
#include "codec/error.hh"
#include "codec/ratecontrol.hh"
#include "support/logging.hh"
#include "support/serialize.hh"

namespace m4ps::codec
{

namespace
{

// Checkpoint capture dumps the full stride x height buffer of each
// plane - padding columns included - so restored state is byte-exact
// even where prediction reads touch the pad.

void
savePlane(support::StateWriter &sw, const video::Plane &p)
{
    sw.i32(p.width());
    sw.i32(p.height());
    sw.i32(p.stride());
    if (p.empty())
        sw.bytes(nullptr, 0);
    else
        sw.bytes(p.rowPtr(0),
                 static_cast<size_t>(p.stride()) * p.height());
}

void
restorePlane(support::StateReader &sr, video::Plane &p)
{
    const int w = sr.i32();
    const int h = sr.i32();
    const int stride = sr.i32();
    if (w != p.width() || h != p.height() || stride != p.stride())
        throw support::SerializeError(
            "plane geometry mismatch: checkpoint " +
            std::to_string(w) + "x" + std::to_string(h) + "/" +
            std::to_string(stride) + " vs live " +
            std::to_string(p.width()) + "x" +
            std::to_string(p.height()) + "/" +
            std::to_string(p.stride()));
    if (p.empty()) {
        std::vector<uint8_t> none;
        sr.bytes(none);
        if (!none.empty())
            throw support::SerializeError(
                "pixel payload for an empty plane");
        return;
    }
    sr.bytesInto(p.rowPtr(0),
                 static_cast<size_t>(p.stride()) * p.height());
}

void
saveImage(support::StateWriter &sw, const video::Yuv420Image &img)
{
    for (int i = 0; i < 3; ++i)
        savePlane(sw, img.plane(i));
}

void
restoreImage(support::StateReader &sr, video::Yuv420Image &img)
{
    for (int i = 0; i < 3; ++i)
        restorePlane(sr, img.plane(i));
}

constexpr uint8_t kVolStateMarker = 0x5b;

} // namespace

void
GopConfig::validate() const
{
    M4PS_ASSERT(intraPeriod >= 1, "intra period must be >= 1");
    M4PS_ASSERT(bFrames >= 0, "negative B-frame count");
    M4PS_ASSERT(intraPeriod % (bFrames + 1) == 0,
                "intra period must be a multiple of the anchor "
                "distance (bFrames + 1)");
}

void
writeVolHeader(bits::BitWriter &bw, const VolConfig &cfg)
{
    bits::putVolStartCode(bw, cfg.volId);
    bits::putUe(bw, static_cast<uint32_t>(cfg.width / 16));
    bits::putUe(bw, static_cast<uint32_t>(cfg.height / 16));
    bw.putBit(cfg.hasShape);
    bw.putBit(cfg.enhancement);
    bw.putBit(cfg.mpegQuant);
    bw.putBit(cfg.halfPel);
    bw.putBit(cfg.fourMv);
}

VolConfig
readVolHeader(bits::BitReader &br, int vo_id, int vol_id,
              const DecodeLimits &limits)
{
    VolConfig cfg;
    cfg.voId = vo_id;
    cfg.volId = vol_id;
    // Widen before multiplying: a corrupt exp-Golomb value times 16
    // must not overflow int before the limit check sees it.
    const int64_t mbw = static_cast<int64_t>(bits::getUe(br));
    const int64_t mbh = static_cast<int64_t>(bits::getUe(br));
    cfg.hasShape = br.getBit();
    cfg.enhancement = br.getBit();
    cfg.mpegQuant = br.getBit();
    cfg.halfPel = br.getBit();
    cfg.fourMv = br.getBit();
    if (br.overrun() || mbw <= 0 || mbh <= 0)
        throw DecodeError(DecodeErrorKind::BadVolHeader,
                          "corrupt VOL header");
    if (mbw * 16 > limits.maxWidth || mbh * 16 > limits.maxHeight) {
        throw DecodeError(
            DecodeErrorKind::LimitExceeded,
            "VOL dimensions " + std::to_string(mbw * 16) + "x" +
                std::to_string(mbh * 16) + " exceed decode limits");
    }
    cfg.width = static_cast<int>(mbw) * 16;
    cfg.height = static_cast<int>(mbh) * 16;
    return cfg;
}

video::Rect
alphaBBoxMb(const video::Plane &alpha)
{
    int x0 = alpha.width(), y0 = alpha.height(), x1 = -1, y1 = -1;
    for (int y = 0; y < alpha.height(); ++y) {
        const uint8_t *row = alpha.rowPtr(y);
        for (int x = 0; x < alpha.width(); ++x) {
            if (row[x]) {
                x0 = std::min(x0, x);
                y0 = std::min(y0, y);
                x1 = std::max(x1, x);
                y1 = std::max(y1, y);
            }
        }
    }
    if (x1 < 0)
        return {0, 0, 1, 1}; // empty shape: one transparent MB
    const int mx0 = x0 / 16;
    const int my0 = y0 / 16;
    const int mx1 = x1 / 16;
    const int my1 = y1 / 16;
    return {mx0, my0, mx1 - mx0 + 1, my1 - my0 + 1};
}

// ---------------------------------------------------------------------
// VolEncoder
// ---------------------------------------------------------------------

VolEncoder::VolEncoder(memsim::SimContext &ctx, const VolConfig &cfg,
                       const GopConfig &gop, RateController *rc)
    : cfg_(cfg), gop_(gop), rc_(rc), vopEnc_(ctx, cfg)
{
    cfg_.validate();
    gop_.validate();
    M4PS_ASSERT(rc_, "VolEncoder needs a rate controller");
    if (cfg_.enhancement) {
        for (int i = 0; i < 2; ++i) {
            enhRecon_[i] = video::Yuv420Image(ctx, cfg_.width,
                                              cfg_.height);
            if (cfg_.hasShape)
                enhAlpha_[i] = video::Plane(ctx, cfg_.width,
                                            cfg_.height);
        }
        return;
    }
    for (int i = 0; i < 2; ++i) {
        reconStore_[i] = video::Yuv420Image(ctx, cfg_.width,
                                            cfg_.height);
        if (cfg_.hasShape)
            alphaStore_[i] = video::Plane(ctx, cfg_.width, cfg_.height);
    }
    pending_.resize(gop_.bFrames);
    for (auto &p : pending_) {
        p.frame = video::Yuv420Image(ctx, cfg_.width, cfg_.height);
        if (cfg_.hasShape)
            p.alpha = video::Plane(ctx, cfg_.width, cfg_.height);
    }
}

void
VolEncoder::writeHeader(bits::BitWriter &bw)
{
    writeVolHeader(bw, cfg_);
}

video::Rect
VolEncoder::vopWindow(const video::Plane *alpha) const
{
    if (!cfg_.hasShape || !alpha)
        return {0, 0, cfg_.mbWidth(), cfg_.mbHeight()};
    return alphaBBoxMb(*alpha);
}

VopHeader
VolEncoder::makeHeader(VopType type, int timestamp,
                       const video::Plane *alpha) const
{
    VopHeader hdr;
    hdr.type = type;
    hdr.voId = cfg_.voId;
    hdr.volId = cfg_.volId;
    hdr.timestamp = timestamp;
    hdr.mbWindow = vopWindow(alpha);
    hdr.packetized = cfg_.resyncInterval > 0;
    hdr.dataPartitioned = cfg_.dataPartitioning;
    return hdr;
}

const video::Yuv420Image &
VolEncoder::lastAnchorRecon() const
{
    if (cfg_.enhancement) {
        M4PS_ASSERT(curEnh_ >= 0, "no enhancement VOP coded yet");
        return enhRecon_[curEnh_];
    }
    M4PS_ASSERT(curAnchor_ >= 0, "no anchor coded yet");
    return reconStore_[curAnchor_];
}

VopStats
VolEncoder::encodeAnchor(bits::BitWriter &bw,
                         const video::Yuv420Image &frame,
                         const video::Plane *alpha, int timestamp,
                         VopType type)
{
    const int target = curAnchor_ < 0 ? 0 : 1 - curAnchor_;
    VopHeader hdr = makeHeader(type, timestamp, alpha);
    hdr.qp = rc_->qpForVop(type);

    RefFrames refs;
    if (type == VopType::P)
        refs.past = &reconStore_[curAnchor_];

    VopStats stats = vopEnc_.encode(
        bw, hdr, frame, alpha, refs, &reconStore_[target],
        cfg_.hasShape ? &alphaStore_[target] : nullptr);
    rc_->update(stats.bits);
    curAnchor_ = target;
    havePast_ = true;
    return stats;
}

VopStats
VolEncoder::encodeB(bits::BitWriter &bw, const video::Yuv420Image &frame,
                    const video::Plane *alpha, int timestamp)
{
    VopHeader hdr = makeHeader(VopType::B, timestamp, alpha);
    hdr.qp = rc_->qpForVop(VopType::B);

    RefFrames refs;
    refs.past = &reconStore_[1 - curAnchor_];
    refs.future = &reconStore_[curAnchor_];

    VopStats stats =
        vopEnc_.encode(bw, hdr, frame, alpha, refs, nullptr, nullptr);
    rc_->update(stats.bits);
    return stats;
}

std::vector<VopStats>
VolEncoder::encodeFrame(bits::BitWriter &bw,
                        const video::Yuv420Image &frame,
                        const video::Plane *alpha, int timestamp)
{
    M4PS_ASSERT(!cfg_.enhancement,
                "use encodeEnhanced() for enhancement layers");
    std::vector<VopStats> out;
    const int m = gop_.bFrames + 1;
    const bool anchor = frameCount_ % m == 0;
    const bool intra =
        frameCount_ % gop_.intraPeriod == 0 || !havePast_;
    ++frameCount_;

    if (!anchor) {
        // Buffer as a B candidate (the capture path; untraced copy).
        M4PS_ASSERT(numPending_ < static_cast<int>(pending_.size()),
                    "B buffer overflow");
        Pending &p = pending_[numPending_++];
        p.frame.copyFrom(frame);
        if (cfg_.hasShape && alpha)
            p.alpha.copyFrom(*alpha);
        p.timestamp = timestamp;
        return out;
    }

    // Anchor first (coding order), then the buffered B-VOPs that
    // display between the previous anchor and this one.
    out.push_back(encodeAnchor(bw, frame, alpha, timestamp,
                               intra ? VopType::I : VopType::P));
    const bool can_b = curAnchor_ >= 0 && havePast_ && frameCount_ > 1;
    for (int i = 0; i < numPending_; ++i) {
        Pending &p = pending_[i];
        if (can_b) {
            out.push_back(encodeB(
                bw, p.frame, cfg_.hasShape ? &p.alpha : nullptr,
                p.timestamp));
        }
    }
    numPending_ = 0;
    return out;
}

VopStats
VolEncoder::encodeEnhanced(bits::BitWriter &bw,
                           const video::Yuv420Image &frame,
                           const video::Plane *alpha, int timestamp,
                           const video::Yuv420Image &spatial_ref)
{
    M4PS_ASSERT(cfg_.enhancement, "not an enhancement layer");
    const int target = curEnh_ < 0 ? 0 : 1 - curEnh_;
    VopHeader hdr = makeHeader(VopType::B, timestamp, alpha);
    hdr.qp = rc_->qpForVop(VopType::P);

    RefFrames refs;
    if (haveEnhPast_)
        refs.past = &enhRecon_[curEnh_];
    refs.future = &spatial_ref;

    VopStats stats = vopEnc_.encode(
        bw, hdr, frame, alpha, refs, &enhRecon_[target],
        cfg_.hasShape ? &enhAlpha_[target] : nullptr);
    rc_->update(stats.bits);
    curEnh_ = target;
    haveEnhPast_ = true;
    return stats;
}

std::vector<VopStats>
VolEncoder::flush(bits::BitWriter &bw)
{
    std::vector<VopStats> out;
    if (cfg_.enhancement)
        return out;
    // Trailing frames that never saw their future anchor are coded
    // as a P chain.
    for (int i = 0; i < numPending_; ++i) {
        Pending &p = pending_[i];
        out.push_back(encodeAnchor(
            bw, p.frame, cfg_.hasShape ? &p.alpha : nullptr,
            p.timestamp, havePast_ ? VopType::P : VopType::I));
    }
    numPending_ = 0;
    return out;
}

void
VolEncoder::saveState(support::StateWriter &sw) const
{
    sw.u8(kVolStateMarker);
    sw.i32(curAnchor_);
    sw.b(havePast_);
    sw.i32(frameCount_);
    sw.i32(numPending_);
    sw.i32(curEnh_);
    sw.b(haveEnhPast_);
    if (cfg_.enhancement) {
        for (int i = 0; i < 2; ++i) {
            saveImage(sw, enhRecon_[i]);
            savePlane(sw, enhAlpha_[i]);
        }
        return;
    }
    for (int i = 0; i < 2; ++i) {
        saveImage(sw, reconStore_[i]);
        savePlane(sw, alphaStore_[i]);
    }
    for (int i = 0; i < numPending_; ++i) {
        const Pending &p = pending_[i];
        sw.i32(p.timestamp);
        saveImage(sw, p.frame);
        savePlane(sw, p.alpha);
    }
}

void
VolEncoder::restoreState(support::StateReader &sr)
{
    sr.expect(kVolStateMarker, "VolEncoder");
    curAnchor_ = sr.i32();
    havePast_ = sr.b();
    frameCount_ = sr.i32();
    numPending_ = sr.i32();
    curEnh_ = sr.i32();
    haveEnhPast_ = sr.b();
    if (curAnchor_ < -1 || curAnchor_ > 1 || curEnh_ < -1 ||
        curEnh_ > 1 || frameCount_ < 0 || numPending_ < 0 ||
        numPending_ > static_cast<int>(pending_.size()))
        throw support::SerializeError("VolEncoder state out of range");
    if (cfg_.enhancement) {
        for (int i = 0; i < 2; ++i) {
            restoreImage(sr, enhRecon_[i]);
            restorePlane(sr, enhAlpha_[i]);
        }
        return;
    }
    for (int i = 0; i < 2; ++i) {
        restoreImage(sr, reconStore_[i]);
        restorePlane(sr, alphaStore_[i]);
    }
    for (int i = 0; i < numPending_; ++i) {
        Pending &p = pending_[i];
        p.timestamp = sr.i32();
        restoreImage(sr, p.frame);
        restorePlane(sr, p.alpha);
    }
}

// ---------------------------------------------------------------------
// VolDecoder
// ---------------------------------------------------------------------

VolDecoder::VolDecoder(memsim::SimContext &ctx, const VolConfig &cfg)
    : cfg_(cfg), vopDec_(ctx, cfg)
{
    cfg_.validate();
    for (int i = 0; i < 2; ++i) {
        anchorStore_[i] = video::Yuv420Image(ctx, cfg_.width,
                                             cfg_.height);
        if (cfg_.hasShape)
            anchorAlpha_[i] = video::Plane(ctx, cfg_.width,
                                           cfg_.height);
        // The reference decoder interpolates each reconstructed
        // anchor's luminance once and serves half-pel MC from the
        // precomputed planes.
        if (cfg_.halfPel && !cfg_.enhancement)
            anchorInterp_[i] = HalfPelPlanes(ctx, cfg_.width,
                                             cfg_.height);
    }
    if (!cfg_.enhancement) {
        bStore_ = video::Yuv420Image(ctx, cfg_.width, cfg_.height);
        if (cfg_.hasShape)
            bAlpha_ = video::Plane(ctx, cfg_.width, cfg_.height);
    }
}

const video::Yuv420Image &
VolDecoder::lastDecoded() const
{
    M4PS_ASSERT(lastDecoded_, "nothing decoded yet");
    return *lastDecoded_;
}

std::vector<DisplayFrame>
VolDecoder::decodeVop(bits::BitReader &br, const VopHeader &hdr,
                      const video::Yuv420Image *spatial_ref)
{
    std::vector<DisplayFrame> out;

    if (cfg_.enhancement) {
        M4PS_ASSERT(spatial_ref,
                    "enhancement VOP needs a spatial reference");
        const int target = curAnchor_ < 0 ? 0 : 1 - curAnchor_;
        RefFrames refs;
        if (curAnchor_ >= 0)
            refs.past = &anchorStore_[curAnchor_];
        refs.future = spatial_ref;
        video::Plane *oa =
            cfg_.hasShape ? &anchorAlpha_[target] : nullptr;
        totals_ += vopDec_.decode(br, hdr, refs, anchorStore_[target],
                                  oa);
        curAnchor_ = target;
        lastDecoded_ = &anchorStore_[target];
        out.push_back({hdr.timestamp, lastDecoded_, oa});
        return out;
    }

    if (hdr.type == VopType::B) {
        if (prevAnchor_ < 0 || curAnchor_ < 0)
            throw StreamError("B-VOP before two anchors");
        RefFrames refs;
        refs.past = &anchorStore_[prevAnchor_];
        refs.future = &anchorStore_[curAnchor_];
        if (!anchorInterp_[0].empty()) {
            refs.pastInterp = &anchorInterp_[prevAnchor_];
            refs.futureInterp = &anchorInterp_[curAnchor_];
        }
        video::Plane *oa = cfg_.hasShape ? &bAlpha_ : nullptr;
        totals_ += vopDec_.decode(br, hdr, refs, bStore_, oa);
        lastDecoded_ = &bStore_;
        out.push_back({hdr.timestamp, &bStore_, oa});
        return out;
    }

    // Anchor: decode into the store not holding the current anchor,
    // emit the previously held anchor.
    const int target = curAnchor_ < 0 ? 0 : 1 - curAnchor_;
    RefFrames refs;
    if (hdr.type == VopType::P) {
        if (curAnchor_ < 0)
            throw StreamError("P-VOP before any anchor");
        refs.past = &anchorStore_[curAnchor_];
        if (!anchorInterp_[0].empty())
            refs.pastInterp = &anchorInterp_[curAnchor_];
    }
    video::Plane *oa = cfg_.hasShape ? &anchorAlpha_[target] : nullptr;
    totals_ += vopDec_.decode(br, hdr, refs, anchorStore_[target], oa);
    if (!anchorInterp_[0].empty()) {
        // Interpolate the padded VOP window only, as the reference
        // decoder does; the pad covers window drift between anchors
        // plus the search range and the half-pel border.
        const video::Rect px_window{hdr.mbWindow.x * 16,
                                    hdr.mbWindow.y * 16,
                                    hdr.mbWindow.w * 16,
                                    hdr.mbWindow.h * 16};
        const int pad = std::max(32, 2 * cfg_.searchRange);
        anchorInterp_[target].build(anchorStore_[target].y(),
                                    px_window, pad);
    }
    if (curAnchor_ >= 0) {
        out.push_back({anchorTs_[curAnchor_],
                       &anchorStore_[curAnchor_],
                       cfg_.hasShape ? &anchorAlpha_[curAnchor_]
                                     : nullptr});
    }
    prevAnchor_ = curAnchor_;
    curAnchor_ = target;
    anchorTs_[target] = hdr.timestamp;
    lastDecoded_ = &anchorStore_[target];
    return out;
}

std::vector<DisplayFrame>
VolDecoder::flush()
{
    std::vector<DisplayFrame> out;
    if (!cfg_.enhancement && curAnchor_ >= 0) {
        out.push_back({anchorTs_[curAnchor_], &anchorStore_[curAnchor_],
                       cfg_.hasShape ? &anchorAlpha_[curAnchor_]
                                     : nullptr});
        curAnchor_ = -1;
        prevAnchor_ = -1;
    }
    return out;
}

} // namespace m4ps::codec
