/**
 * @file
 * Coefficient scan orders.
 *
 * MPEG-4 texture coding scans quantized 8x8 blocks into a 1-D
 * sequence before run-length coding.  The standard defines the
 * classic zigzag scan plus alternate-horizontal and alternate-
 * vertical scans used with intra AC prediction.
 */

#ifndef M4PS_CODEC_ZIGZAG_HH
#define M4PS_CODEC_ZIGZAG_HH

#include "codec/dct.hh"

namespace m4ps::codec
{

/** Available scan orders. */
enum class ScanOrder
{
    Zigzag,
    AlternateHorizontal,
    AlternateVertical,
};

/** Scan table for @p order: scanned index -> block index. */
const int *scanTable(ScanOrder order);

/** Scan @p block into @p out following @p order. */
void scan(const Block &block, Block &out,
          ScanOrder order = ScanOrder::Zigzag);

/** Inverse of scan(). */
void unscan(const Block &scanned, Block &out,
            ScanOrder order = ScanOrder::Zigzag);

} // namespace m4ps::codec

#endif // M4PS_CODEC_ZIGZAG_HH
