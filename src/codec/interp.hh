/**
 * @file
 * Precomputed half-sample reference planes.
 *
 * Decoders of the MoMuSys generation interpolate each reconstructed
 * reference VOP's luminance once (the h, v, and hv half-pel planes)
 * and serve motion compensation from the precomputed planes.  The
 * interpolation pass streams the frame through the cache with high
 * spatial locality and contributes a large share of the decoder's
 * L1-friendly access mass.
 *
 * The plane values are bit-identical to the on-the-fly bilinear
 * interpolation in codec/motion.cc, so prediction through either
 * path reconstructs the same pixels (tested).
 */

#ifndef M4PS_CODEC_INTERP_HH
#define M4PS_CODEC_INTERP_HH

#include "video/plane.hh"

namespace m4ps::codec
{

/** The three half-pel companion planes of one luminance plane. */
class HalfPelPlanes
{
  public:
    HalfPelPlanes() = default;

    /** Allocate companions for a @p w x @p h luminance plane. */
    HalfPelPlanes(memsim::SimContext &ctx, int w, int h)
        : h_(ctx, w, h), v_(ctx, w, h), hv_(ctx, w, h)
    {}

    /**
     * Interpolate @p src into the three planes (traced), restricted
     * to @p region padded by @p pad pixels (clamped to the plane).
     * The reference software interpolates only the padded bounding
     * box of each VOP; the pad must cover the largest displacement
     * motion compensation can read (window drift + search range +
     * the half-pel border).
     */
    void build(const video::Plane &src, const video::Rect &region,
               int pad = 32);

    /** Interpolate the whole plane. */
    void
    build(const video::Plane &src)
    {
        build(src, {0, 0, src.width(), src.height()}, 0);
    }

    bool empty() const { return h_.empty(); }

    const video::Plane &h() const { return h_; }
    const video::Plane &v() const { return v_; }
    const video::Plane &hv() const { return hv_; }

    /** Plane serving a (hx, hy) half-pel phase; null for (0, 0). */
    const video::Plane *
    phase(int hx, int hy) const
    {
        if (hx && hy)
            return &hv_;
        if (hx)
            return &h_;
        if (hy)
            return &v_;
        return nullptr;
    }

  private:
    video::Plane h_;   //!< Horizontal half-pel.
    video::Plane v_;   //!< Vertical half-pel.
    video::Plane hv_;  //!< Diagonal half-pel.
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_INTERP_HH
