/**
 * @file
 * Coefficient quantization.
 *
 * Implements the two MPEG-4 texture quantization methods: the
 * H.263-style uniform quantizer (method 2, the MoMuSys default) and
 * the MPEG-style weighted-matrix quantizer (method 1), plus the
 * non-linear intra-DC scaler of the standard.
 */

#ifndef M4PS_CODEC_QUANT_HH
#define M4PS_CODEC_QUANT_HH

#include "codec/dct.hh"

namespace m4ps::codec
{

/** Quantizer selection and state. */
struct QuantParams
{
    int qp = 8;              //!< Quantizer parameter, 1..31.
    bool intra = false;      //!< Intra block (DC handled separately).
    bool mpegMatrix = false; //!< Weighted-matrix method instead of H.263.
    bool luma = true;        //!< Selects the intra-DC scaler table.
};

/** Non-linear intra DC scaler (MPEG-4 Part 2, table 7-1 shape). */
int dcScaler(int qp, bool luma);

/**
 * Quantize @p coefs into @p levels.
 *
 * For intra blocks, levels[0] is the DC level using dcScaler();
 * AC coefficients use the selected method.
 */
void quantize(const Block &coefs, Block &levels, const QuantParams &qp);

/** Inverse of quantize(); reconstruction error bounded by step/2. */
void dequantize(const Block &levels, Block &coefs, const QuantParams &qp);

/** Default intra quantization matrix (MPEG-4 Part 2 defaults). */
extern const int kIntraMatrix[kBlockSize];

/** Default non-intra quantization matrix. */
extern const int kInterMatrix[kBlockSize];

} // namespace m4ps::codec

#endif // M4PS_CODEC_QUANT_HH
