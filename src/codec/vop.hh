/**
 * @file
 * Video object plane (VOP) encoding and decoding.
 *
 * "Each time sample of a video object constitutes a video object
 * plane, or VOP, containing motion parameters, shape information,
 * and texture data.  VOPs are encoded using 16x16 or 8x8
 * macroblocks" (paper §2.1).  VopEncoder/VopDecoder implement the
 * three VOP coding modes of the paper's Figure 1:
 *
 *  - I-VOP: intra-only, complete image, spatial redundancy only.
 *  - P-VOP: forward prediction from the nearest previously coded VOP.
 *  - B-VOP: bidirectional interpolation between I/P-VOPs.
 *
 * For spatially scalable enhancement layers, VOPs are coded with the
 * B machinery where the "backward" reference is the upsampled base
 * layer reconstruction at the same time instant (vector forced to
 * zero); see VolConfig::enhancement.
 *
 * Texture is coded in macroblock-row slices: every predictor
 * dependency on the row above is severed (see RowPredictors) and
 * each row's payload is an independently decodable sub-stream behind
 * a row-length table, so rows can be encoded and decoded in parallel
 * on the support::ThreadPool while producing a bitstream that is
 * bit-identical for any thread count (docs/THREADING.md).
 *
 * With error resilience enabled (VolConfig::resyncInterval), the
 * same row sub-streams are carried in video packets behind
 * byte-aligned resync markers, optionally split into motion and
 * texture partitions, and lost packets are concealed by motion-
 * compensated copy from the previous VOP (docs/RESILIENCE.md).
 */

#ifndef M4PS_CODEC_VOP_HH
#define M4PS_CODEC_VOP_HH

#include <vector>

#include "bitstream/bitstream.hh"
#include "codec/interp.hh"
#include "codec/motion.hh"
#include "codec/quant.hh"
#include "codec/ratecontrol.hh"
#include "codec/rlc.hh"
#include "codec/shape.hh"
#include "memsim/buffer.hh"
#include "support/obs/obs.hh"
#include "video/yuv.hh"

namespace m4ps::codec
{

/** Static configuration of one video object layer. */
struct VolConfig
{
    int width = 0;            //!< Luma width (multiple of 16).
    int height = 0;           //!< Luma height (multiple of 16).
    bool hasShape = false;    //!< Arbitrary-shape VOL (binary alpha).
    int searchRange = 8;      //!< Full-pel ME range for P-VOPs.
    int searchRangeB = 4;     //!< Full-pel ME range for B-VOPs.
    bool halfPel = true;      //!< Half-pel refinement.
    bool fourMv = true;       //!< INTER4V: four 8x8 vectors per MB.
    bool mpegQuant = false;   //!< Weighted-matrix quantization.
    bool enhancement = false; //!< Spatially scalable enhancement layer.
    int voId = 0;
    int volId = 0;

    /**
     * Encoder-side resilience tools (never serialized in the VOL
     * header; the VOP startcode signals packetization per VOP, so
     * streams coded with these off are byte-identical to streams
     * from builds that predate them).
     */
    int resyncInterval = 0;        //!< MB rows per video packet; 0 = off.
    bool dataPartitioning = false; //!< Split motion/DC from texture.

    int mbWidth() const { return width / 16; }
    int mbHeight() const { return height / 16; }

    void validate() const;
};

/** Per-VOP header fields carried in the bitstream. */
struct VopHeader
{
    VopType type = VopType::I;
    int voId = 0;
    int volId = 0;
    int timestamp = 0;        //!< Display time index.
    int qp = 8;
    video::Rect mbWindow;     //!< Coded region in macroblock units.
    /**
     * Resilient VOP (startcode 0xb7): texture rows travel in video
     * packets behind resync markers instead of one monolithic
     * row-table payload, so a corruption event costs one packet.
     */
    bool packetized = false;
    /** Packets split motion/DC data from texture (resilient only). */
    bool dataPartitioned = false;
};

/** Write a VOP startcode (0xb6, or 0xb7 when packetized) plus header. */
void writeVopHeader(bits::BitWriter &bw, const VopHeader &hdr);

/**
 * Read the header following a VOP startcode.  @p packetized selects
 * the resilient (0xb7) layout, known from the startcode just
 * consumed.  Throws StreamError on truncated or implausible fields
 * (values that could overflow window arithmetic or request absurd
 * allocations downstream).
 */
VopHeader readVopHeader(bits::BitReader &br, bool packetized = false);

/** Outcome statistics of coding one VOP. */
struct VopStats
{
    VopType type = VopType::I;
    uint64_t bits = 0;
    int intraMbs = 0;
    int interMbs = 0;         //!< Forward-predicted (P or B-fwd).
    int backwardMbs = 0;      //!< B backward mode.
    int bidirectionalMbs = 0; //!< B interpolated mode.
    int fourMvMbs = 0;        //!< Inter MBs coded with four vectors.
    int skippedMbs = 0;
    int transparentMbs = 0;
    int codedBlocks = 0;
    /**
     * Decoder only: macroblock rows whose slice payload was corrupt
     * (or never arrived) and got concealed.  Row independence limits
     * the damage to one slice.
     */
    int corruptedRows = 0;
    /** Decoder only: video packets parsed successfully. */
    int packets = 0;
    /** Decoder only: video packets rejected as corrupt. */
    int corruptPackets = 0;
    /**
     * Decoder only: macroblocks replaced by motion-compensated copy
     * from a reference (packetized concealment).  Rows counted in
     * corruptedRows without a usable reference keep stale content
     * and do not count here.
     */
    int concealedMbs = 0;

    int codedMbs() const
    {
        return intraMbs + interMbs + backwardMbs + bidirectionalMbs;
    }

    VopStats &
    operator+=(const VopStats &o)
    {
        bits += o.bits;
        intraMbs += o.intraMbs;
        interMbs += o.interMbs;
        backwardMbs += o.backwardMbs;
        bidirectionalMbs += o.bidirectionalMbs;
        fourMvMbs += o.fourMvMbs;
        skippedMbs += o.skippedMbs;
        transparentMbs += o.transparentMbs;
        codedBlocks += o.codedBlocks;
        corruptedRows += o.corruptedRows;
        packets += o.packets;
        corruptPackets += o.corruptPackets;
        concealedMbs += o.concealedMbs;
        return *this;
    }
};

/** References available to a VOP. */
struct RefFrames
{
    const video::Yuv420Image *past = nullptr;   //!< Forward reference.
    const video::Yuv420Image *future = nullptr; //!< Backward reference.

    /**
     * Optional precomputed half-pel luma planes (decoder side).
     * When present, luma motion compensation is served from them,
     * as in the reference decoder; values are identical either way.
     */
    const HalfPelPlanes *pastInterp = nullptr;
    const HalfPelPlanes *futureInterp = nullptr;
};

/**
 * Prediction state local to one macroblock row (slice).
 *
 * Rows are coded as independent slices so they can run concurrently:
 * every predictor dependency that would reach into the row above is
 * severed.  Motion vectors predict from the left neighbour only (the
 * H.263 median's above and above-right candidates live in the
 * previous row); intra DC predicts left-then-above where "above"
 * never leaves the current macroblock row (the lower luma block row
 * still predicts vertically from the upper one).  Encoder and
 * decoder share this class, so the bitstream is identical for any
 * thread count.
 */
class RowPredictors
{
  public:
    RowPredictors(int mb_width, int mb_row);

    /** Advance to the next macroblock: commit left-neighbour state. */
    void beginMb();

    /** Left-neighbour MV predictor for direction @p dir. */
    MotionVector predictMv(int dir) const;

    /** Record the coded MV of the current MB for direction @p dir. */
    void setMv(int dir, MotionVector mv);

    /** Intra DC prediction for absolute block position (bx, by). */
    int predictDc(int plane, int bx, int by) const;

    /** Record a reconstructed intra DC level. */
    void setDc(int plane, int bx, int by, int level);

  private:
    int mbWidth_;
    int mbRow_;
    MotionVector left_[2]{};
    MotionVector pending_[2]{};
    bool leftValid_[2]{};
    bool pendingValid_[2]{};
    /** DC levels: plane 0 = Y (2 block rows x 2W), 1 = U, 2 = V (W). */
    std::vector<int16_t> dc_[3];
    std::vector<uint8_t> dcValid_[3];
};

/**
 * Shared scratch state for VOP coding.
 *
 * The block pipeline (fetch, DCT, quantize, scan, reconstruct) runs
 * through small scratch buffers that live in simulated memory: in
 * the reference software these are exactly the L1-resident work
 * arrays whose reuse produces the high primary-cache hit rates the
 * paper reports.  Under row-parallel coding the SimBuffers keep
 * providing the canonical simulated addresses while each row task
 * carries its own real pixel scratch; the trace operations never
 * touch the stored data, so concurrent rows only ever read them.
 */
class VopCodecBase
{
  protected:
    VopCodecBase(memsim::SimContext &ctx, const VolConfig &cfg);

    /** Scratch regions inside blockScratch_ (64 int16 each). */
    enum ScratchRegion
    {
        kSrc = 0,     //!< Input samples / residual.
        kCoef,        //!< DCT coefficients.
        kLevels,      //!< Quantized levels.
        kScanned,     //!< Scanned levels.
        kDequant,     //!< Dequantized coefficients.
        kIdct,        //!< Inverse transform output.
        kNumRegions,
    };

    void traceBlockLoad(ScratchRegion r, int n = kBlockSize) const;
    void traceBlockStore(ScratchRegion r, int n = kBlockSize);

    /** Charge pure-compute cycles (transform butterflies etc.). */
    void tick(double cycles) const;

    /** Validate the VOP window and reset per-VOP shape state. */
    void resetVopState(const VopHeader &hdr);

    const VolConfig cfg_;
    memsim::MemoryHierarchy *mem_;
    ShapeCoder shape_;

    /** Block pipeline scratch (traced, L1-resident). */
    memsim::SimBuffer<int16_t> blockScratch_;
    /** Forward / backward / interpolated predictions (Y+U+V). */
    memsim::SimBuffer<uint8_t> predFwd_;
    memsim::SimBuffer<uint8_t> predBwd_;
    memsim::SimBuffer<uint8_t> predBi_;

    /** Window of the VOP being coded. */
    video::Rect window_;
};

/** Encodes one VOP at a time into a bitstream. */
class VopEncoder : public VopCodecBase
{
  public:
    VopEncoder(memsim::SimContext &ctx, const VolConfig &cfg);

    /**
     * Encode @p cur as described by @p hdr.
     *
     * @param bw      destination bitstream (header is written too).
     * @param hdr     VOP type, timestamp, qp, window.
     * @param cur     input frame.
     * @param alpha   binary alpha plane (required iff cfg.hasShape).
     * @param refs    reconstruction references (past for P/B, future
     *                for B / enhancement).
     * @param recon   reconstructed output (required for I/P anchors;
     *                may be null for B-VOPs).
     * @param recon_alpha reconstructed alpha (required iff hasShape
     *                and recon is non-null).
     */
    VopStats encode(bits::BitWriter &bw, const VopHeader &hdr,
                    const video::Yuv420Image &cur,
                    const video::Plane *alpha, const RefFrames &refs,
                    video::Yuv420Image *recon,
                    video::Plane *recon_alpha);

  private:
    struct BlockCode
    {
        Block levels{};           //!< Quantized levels (scan order).
        std::vector<RunLevel> events;
        int dcDelta = 0;          //!< Intra only.
        bool coded = false;
    };

    /**
     * Encode one macroblock row into @p bw (a fresh per-row writer).
     * When @p tex is non-null (data partitioning), texture bits (cbp,
     * coded flags, coefficient events) go there while motion, mode,
     * and intra-DC bits stay in @p bw.  Thread-safe against other
     * rows of the same VOP.
     */
    VopStats encodeTextureRow(bits::BitWriter &bw, bits::BitWriter *tex,
                              const VopHeader &hdr, int my,
                              const video::Yuv420Image &cur,
                              const std::vector<BabMode> &modes,
                              const RefFrames &refs,
                              video::Yuv420Image *recon);

    /**
     * Emit the coded rows as video packets: resync marker, packet
     * header with redundant VOP fields, row-length table(s), and the
     * row payloads (motion and texture partitions separated by a
     * motion marker when @p rowTex is non-null).
     */
    void appendPackets(bits::BitWriter &bw, const VopHeader &hdr,
                       const std::vector<bits::BitWriter> &rowBw,
                       const std::vector<bits::BitWriter> *rowTex);

    /** Run the analysis half of the block pipeline. */
    BlockCode analyzeBlock(RowPredictors &rp, const video::Plane &cur,
                           int x0, int y0, const uint8_t *pred,
                           int pred_stride, bool intra, bool luma,
                           int qp, int plane_idx, int bx, int by);

    /** Reconstruct a block into @p recon (if non-null). */
    void reconBlock(const BlockCode &code, const uint8_t *pred,
                    int pred_stride, bool intra, bool luma, int qp,
                    video::Plane *recon, int x0, int y0);

    void encodeShapePass(bits::BitWriter &bw, const VopHeader &hdr,
                         const video::Plane &alpha,
                         std::vector<BabMode> &modes);
};

/** Decodes one VOP at a time from a bitstream. */
class VopDecoder : public VopCodecBase
{
  public:
    VopDecoder(memsim::SimContext &ctx, const VolConfig &cfg);

    /**
     * Decode the VOP described by @p hdr (header already parsed).
     *
     * @param out        frame to reconstruct into.
     * @param out_alpha  alpha plane to reconstruct into (iff shape).
     */
    VopStats decode(bits::BitReader &br, const VopHeader &hdr,
                    const RefFrames &refs, video::Yuv420Image &out,
                    video::Plane *out_alpha);

  private:
    /** Where one row's partitions live inside the bitstream. */
    struct RowSpan
    {
        uint64_t start = 0;    //!< Motion (or whole-row) bit offset.
        uint64_t bits = 0;
        uint64_t texStart = 0; //!< Texture partition (dp only).
        uint64_t texBits = 0;
        bool covered = false;  //!< A packet carried this row.
    };

    /**
     * Decode one macroblock row from @p br (positioned at the row's
     * slice payload).  With data partitioning, @p tex reads the
     * texture partition while @p br stays on motion/DC data.  When
     * @p mv_row is non-null it receives one concealment-candidate
     * forward vector per macroblock.  Thread-safe against other rows.
     */
    VopStats decodeTextureRow(bits::BitReader &br, bits::BitReader *tex,
                              const VopHeader &hdr, int my,
                              const std::vector<BabMode> &modes,
                              const RefFrames &refs,
                              video::Yuv420Image &out,
                              MotionVector *mv_row);

    /**
     * Parse the video packets of a resilient VOP, filling @p spans
     * and advancing @p br to the end of the VOP payload.  Corrupt
     * packets are skipped via a resync-marker scan and counted in
     * @p stats; the rows they covered stay uncovered.
     */
    void parsePackets(bits::BitReader &br, const VopHeader &hdr,
                      std::vector<RowSpan> &spans, VopStats &stats);

    /**
     * Conceal one lost macroblock row by motion-compensated copy
     * from @p refs, steering each macroblock with its nearest
     * surviving neighbour's vector from @p mvField (or zero).
     * Falls back to stale frame-store content when no reference
     * exists (I-VOP loss).
     */
    void concealRow(int r, const VopHeader &hdr, const RefFrames &refs,
                    const std::vector<MotionVector> &mvField,
                    const std::vector<uint8_t> &rowGood,
                    video::Yuv420Image &out, VopStats &stats);

    /**
     * Decode one block's levels; @p st accumulates per-stage wall
     * time (RLC read, dequant+IDCT, reconstruction) for the row's
     * trace spans.
     */
    void decodeBlockInto(RowPredictors &rp, bits::BitReader &br,
                         bits::BitReader &tex, bool intra, bool luma,
                         int qp, int plane_idx, int bx, int by,
                         const uint8_t *pred, int pred_stride,
                         video::Plane &out, int x0, int y0, bool coded,
                         obs::StageTimes &st);

    void decodeShapePass(bits::BitReader &br, const VopHeader &hdr,
                         video::Plane &alpha,
                         std::vector<BabMode> &modes);

    /**
     * Reference-decoder data marshalling: MoMuSys moves every
     * macroblock through several intermediate VOP structures
     * (bitstream data -> macroblock arrays -> block arrays ->
     * reconstruction -> padded VOP planes).  These L1-resident
     * copies dominate the decoder's access mix and are what gives
     * the paper's decoder its high primary-cache hit rate.
     */
    void marshalMacroblock();

    /** Intermediate macroblock assembly buffer (Y+U+V samples). */
    memsim::SimBuffer<uint8_t> mbAssembly_;
    /** Clip/saturation lookup table (MoMuSys-style). */
    memsim::SimBuffer<uint8_t> clipTable_;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_VOP_HH
