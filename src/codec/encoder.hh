/**
 * @file
 * Top-level MPEG-4 visual encoder: multiple visual objects, each with
 * one or two video object layers, muxed into a single startcode-
 * delimited elementary stream.
 *
 * "Uncorrelated objects are coded, encrypted, and transmitted
 * separately" (paper §1): VO 0 is the rectangular background; any
 * further VOs are arbitrary-shape foreground objects with binary
 * alpha.  Two-layer VOs use spatial scalability (half-resolution
 * base + enhancement).
 */

#ifndef M4PS_CODEC_ENCODER_HH
#define M4PS_CODEC_ENCODER_HH

#include <memory>
#include <vector>

#include "codec/ratecontrol.hh"
#include "codec/vol.hh"

namespace m4ps::codec
{

/** Whole-encoder configuration. */
struct EncoderConfig
{
    int width = 720;
    int height = 576;

    /**
     * Number of visual objects.  1 = a single rectangular VO;
     * N > 1 = rectangular background VO plus N-1 shaped VOs.
     */
    int numVos = 1;

    /** Video object layers per VO (1, or 2 for spatial scalability). */
    int layers = 1;

    GopConfig gop;

    int searchRange = 8;
    int searchRangeB = 4;
    bool halfPel = true;
    bool mpegQuant = false;
    bool fourMv = true;

    double targetBps = 38400.0;
    double frameRate = 30.0;

    /** Starting quantizer; <= 0 derives it from the target rate. */
    int initialQp = 0;

    /**
     * Error resilience: insert a resync marker (video packet) every
     * N macroblock rows.  0 disables packets, and the bitstream is
     * byte-identical to one from a build without this feature.
     */
    int resyncInterval = 0;

    /**
     * Split each video packet into motion and texture partitions so
     * a corrupted texture area still yields usable motion vectors.
     * Requires resyncInterval > 0.
     */
    bool dataPartitioning = false;

    void validate() const;
};

/** Per-VO input for one frame time. */
struct VoInput
{
    const video::Yuv420Image *frame = nullptr;
    const video::Plane *alpha = nullptr; //!< Null for rectangular VOs.
};

/** Aggregate encoding statistics. */
struct EncoderStats
{
    int vops = 0;
    int iVops = 0;
    int pVops = 0;
    int bVops = 0;
    VopStats mb;          //!< Macroblock-level totals.
    uint64_t totalBits = 0;
};

/** Multi-VO, multi-layer MPEG-4 visual encoder. */
class Mpeg4Encoder
{
  public:
    Mpeg4Encoder(memsim::SimContext &ctx, const EncoderConfig &cfg);

    /**
     * Feed one display-order frame time: @p inputs must supply one
     * VoInput per VO (index 0 first).  Shaped VOs require alpha.
     */
    void encodeFrame(const std::vector<VoInput> &inputs, int timestamp);

    /** Flush pending B frames and close the stream. */
    std::vector<uint8_t> finish();

    const EncoderStats &stats() const { return stats_; }

    /** Bits written so far. */
    uint64_t bitsWritten() const { return bw_.bitCount(); }

    /**
     * Read-only view of the whole bytes written so far - a stable,
     * append-only prefix of the final elementary stream (the writer
     * only ever appends).  Streaming transports send the delta
     * between two encodeFrame() calls and the concatenation equals
     * finish()'s buffer, byte for byte.
     */
    const std::vector<uint8_t> &streamPrefix() const
    {
        return bw_.bytes();
    }

    /**
     * Scale every VOL's rate-controller frame budget by @p factor
     * (see RateController::scaleBudget).  The serving layer's
     * backpressure hook: a session whose outbound queue stalls
     * retargets its encoder downward instead of queueing more bytes.
     */
    void scaleBitrate(double factor);

    const EncoderConfig &config() const { return cfg_; }

    /**
     * Checkpoint support (service/checkpoint.hh): capture / restore
     * the complete mutable encoder state - partial bitstream,
     * statistics, rate-controller feedback, and every VOL's frame
     * stores and buffered B candidates - such that an encoder
     * constructed with the identical EncoderConfig, restored, and fed
     * the remaining frames produces a bitstream byte-identical to an
     * uninterrupted run.  restoreState() throws
     * support::SerializeError on truncated or mismatched blobs.
     */
    void saveState(support::StateWriter &sw) const;
    void restoreState(support::StateReader &sr);

  private:
    struct VoState
    {
        std::unique_ptr<RateController> rcBase;
        std::unique_ptr<RateController> rcEnh;
        std::unique_ptr<VolEncoder> base;
        std::unique_ptr<VolEncoder> enh;
        // Spatial-scalability working frames.
        video::Yuv420Image baseInput;
        video::Plane baseAlpha;
        video::Yuv420Image upsampled;
    };

    void writeHeaders();
    void account(VopType type, const VopStats &s);

    EncoderConfig cfg_;
    memsim::SimContext &ctx_;
    bits::BitWriter bw_;
    std::vector<VoState> vos_;
    EncoderStats stats_;
    bool finished_ = false;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_ENCODER_HH
