#include "codec/shape.hh"

#include "support/logging.hh"

namespace m4ps::codec
{

namespace
{

constexpr int kBab = 16;

/**
 * Causal availability for context reads.  A pixel is available when
 * it lies inside the plane and has already been coded given raster
 * BAB order and raster pixel order within the BAB at (x0, y0):
 * anything above the BAB's rows, anything to the left of the BAB,
 * or an earlier pixel within this BAB.  Pixels to the right of the
 * BAB on its own rows belong to a not-yet-coded BAB.
 */
bool
available(const video::Plane &alpha, int x0, int y0, int cur_x, int cur_y,
          int px, int py)
{
    if (px < 0 || py < 0 || px >= alpha.width() || py >= alpha.height())
        return false;
    if (py < y0)
        return true;             // rows fully coded by earlier MB rows
    if (px < x0)
        return true;             // BABs to the left on this MB row
    if (px >= x0 + kBab)
        return false;            // right-neighbour BAB not coded yet
    if (py < cur_y)
        return true;             // earlier row inside this BAB
    return py == cur_y && px < cur_x;
}

} // namespace

void
ShapeCoder::reset()
{
    for (auto &c : ctx_)
        c = ArithContext{};
}

BabMode
ShapeCoder::analyzeBab(const video::Plane &alpha, int x0, int y0)
{
    bool any_set = false;
    bool any_clear = false;
    for (int y = 0; y < kBab; ++y) {
        alpha.traceLoadRow(x0, y0 + y, kBab);
        const uint8_t *row = alpha.rowPtr(y0 + y) + x0;
        for (int x = 0; x < kBab; ++x) {
            if (row[x])
                any_set = true;
            else
                any_clear = true;
        }
        if (any_set && any_clear)
            return BabMode::Coded;
    }
    if (any_set)
        return BabMode::Opaque;
    return BabMode::Transparent;
}

int
ShapeCoder::context(const video::Plane &alpha, int x0, int y0,
                    int x, int y)
{
    // 7-pixel causal template:
    //   (x-2,y-1) (x-1,y-1) (x,y-1) (x+1,y-1)
    //   (x-2,y  ) (x-1,y  )            and (x, y-2)
    static const int kDx[7] = {-1, -2, -2, -1, 0, 1, 0};
    static const int kDy[7] = {0, 0, -1, -1, -1, -1, -2};
    int ctx = 0;
    for (int i = 0; i < 7; ++i) {
        const int px = x + kDx[i];
        const int py = y + kDy[i];
        int bit = 0;
        if (available(alpha, x0, y0, x, y, px, py)) {
            // Context reads are real loads in the shape kernel.
            bit = alpha.loadPx(px, py) ? 1 : 0;
        }
        ctx = (ctx << 1) | bit;
    }
    return ctx;
}

void
ShapeCoder::encodeBab(ArithEncoder &enc, const video::Plane &alpha,
                      int x0, int y0)
{
    memsim::MemoryHierarchy *mem = alpha.mem();
    for (int y = 0; y < kBab; ++y) {
        for (int x = 0; x < kBab; ++x) {
            const int cx = context(alpha, x0, y0, x0 + x, y0 + y);
            const bool bit = alpha.loadPx(x0 + x, y0 + y) != 0;
            enc.encodeBit(ctx_[cx], bit);
        }
    }
    // Arithmetic-coder arithmetic beyond the traced context loads.
    if (mem)
        mem->tick(4.0 * kBab * kBab);
}

void
ShapeCoder::decodeBab(ArithDecoder &dec, video::Plane &alpha,
                      int x0, int y0)
{
    memsim::MemoryHierarchy *mem = alpha.mem();
    for (int y = 0; y < kBab; ++y) {
        for (int x = 0; x < kBab; ++x) {
            const int cx = context(alpha, x0, y0, x0 + x, y0 + y);
            const bool bit = dec.decodeBit(ctx_[cx]);
            alpha.storePx(x0 + x, y0 + y, bit ? 255 : 0);
        }
    }
    if (mem)
        mem->tick(4.0 * kBab * kBab);
}

} // namespace m4ps::codec
