/**
 * @file
 * Reactive rate control.
 *
 * The paper encodes with a target bitrate of 38400 bit/s at 30 Hz.
 * This controller follows the spirit of the MoMuSys Q2 controller in
 * a simplified reactive form: a virtual buffer integrates the error
 * between produced and budgeted bits, and the quantizer parameter is
 * nudged to drain it.
 */

#ifndef M4PS_CODEC_RATECONTROL_HH
#define M4PS_CODEC_RATECONTROL_HH

#include <cstdint>

namespace m4ps::support
{
class StateWriter;
class StateReader;
} // namespace m4ps::support

namespace m4ps::codec
{

/** Frame-type hint for quantizer selection. */
enum class VopType
{
    I,
    P,
    B,
};

/** Virtual-buffer rate controller. */
class RateController
{
  public:
    /**
     * @param target_bps  target bit rate (bits per second).
     * @param frame_rate  frames per second.
     * @param initial_qp  starting quantizer (1..31).
     */
    RateController(double target_bps, double frame_rate, int initial_qp);

    /** Quantizer to use for the next VOP of type @p type. */
    int qpForVop(VopType type) const;

    /** Report the bits actually produced for the last VOP. */
    void update(uint64_t bits_used);

    /** Current buffer fullness in bits (positive = over budget). */
    double fullness() const { return fullness_; }

    /** Current base quantizer. */
    int baseQp() const { return qp_; }

    /** Bit budget per frame. */
    double frameBudget() const { return budget_; }

    /**
     * Scale the per-frame bit budget by @p factor (backpressure from
     * a slow transport: the serving layer halves the budget when a
     * session's outbound queue sits at its high watermark, so the
     * encoder produces fewer bits instead of the queue growing).
     * Note this changes the bitstream from the retarget point on -
     * callers tracking byte-identity must record that it happened.
     */
    void scaleBudget(double factor);

    /**
     * Checkpoint support: the controller's feedback state (buffer
     * fullness and adapted quantizer); budget_ is configuration and
     * is re-derived on construction.
     */
    void saveState(support::StateWriter &sw) const;
    void restoreState(support::StateReader &sr);

  private:
    double budget_;
    double fullness_ = 0;
    int qp_;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_RATECONTROL_HH
