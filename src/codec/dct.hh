/**
 * @file
 * 8x8 forward / inverse discrete cosine transform.
 *
 * Texture in MPEG-4 is "coded separately by a discrete cosine
 * transform (DCT) scheme" over 8x8 blocks (paper §2.1).  This is a
 * separable double-precision implementation rounded to int16 - not
 * the fastest DCT, but bit-stable and accurate well inside the
 * IEEE-1180 error bounds, which is what the reproduction needs.
 */

#ifndef M4PS_CODEC_DCT_HH
#define M4PS_CODEC_DCT_HH

#include <array>
#include <cstdint>

namespace m4ps::codec
{

/** Samples per block edge. */
constexpr int kBlockEdge = 8;

/** Samples per 8x8 block. */
constexpr int kBlockSize = kBlockEdge * kBlockEdge;

/** An 8x8 block of samples or coefficients, row-major. */
using Block = std::array<int16_t, kBlockSize>;

/**
 * Forward 8x8 DCT.
 *
 * @param in  spatial samples (residuals in [-255, 255] or shifted
 *            intra pixels in [-128, 127]).
 * @param out frequency coefficients; |coef| <= 2048 for valid input.
 */
void forwardDct(const Block &in, Block &out);

/** Inverse 8x8 DCT; output clamped to [-2048, 2047]. */
void inverseDct(const Block &in, Block &out);

} // namespace m4ps::codec

#endif // M4PS_CODEC_DCT_HH
