#include "codec/zigzag.hh"

#include "support/logging.hh"

namespace m4ps::codec
{

namespace
{

const int kZigzag[kBlockSize] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
};

const int kAltHorizontal[kBlockSize] = {
     0,  1,  2,  3,  8,  9, 16, 17,
    10, 11,  4,  5,  6,  7, 15, 14,
    13, 12, 19, 18, 24, 25, 32, 33,
    26, 27, 20, 21, 22, 23, 28, 29,
    30, 31, 34, 35, 40, 41, 48, 49,
    42, 43, 36, 37, 38, 39, 44, 45,
    46, 47, 50, 51, 56, 57, 58, 59,
    52, 53, 54, 55, 60, 61, 62, 63,
};

const int kAltVertical[kBlockSize] = {
     0,  8, 16, 24,  1,  9,  2, 10,
    17, 25, 32, 40, 48, 56, 57, 49,
    41, 33, 26, 18,  3, 11,  4, 12,
    19, 27, 34, 42, 50, 58, 35, 43,
    51, 59, 20, 28,  5, 13,  6, 14,
    21, 29, 36, 44, 52, 60, 37, 45,
    53, 61, 22, 30,  7, 15, 23, 31,
    38, 46, 54, 62, 39, 47, 55, 63,
};

} // namespace

const int *
scanTable(ScanOrder order)
{
    switch (order) {
      case ScanOrder::Zigzag: return kZigzag;
      case ScanOrder::AlternateHorizontal: return kAltHorizontal;
      case ScanOrder::AlternateVertical: return kAltVertical;
    }
    M4PS_PANIC("bad scan order");
}

void
scan(const Block &block, Block &out, ScanOrder order)
{
    const int *tab = scanTable(order);
    for (int i = 0; i < kBlockSize; ++i)
        out[i] = block[tab[i]];
}

void
unscan(const Block &scanned, Block &out, ScanOrder order)
{
    const int *tab = scanTable(order);
    for (int i = 0; i < kBlockSize; ++i)
        out[tab[i]] = scanned[i];
}

} // namespace m4ps::codec
