#include "codec/rlc.hh"

#include <cstdlib>

#include "bitstream/expgolomb.hh"
#include "support/logging.hh"

namespace m4ps::codec
{

std::vector<RunLevel>
runLengthEncode(const Block &scanned, int first)
{
    std::vector<RunLevel> events;
    int run = 0;
    for (int i = first; i < kBlockSize; ++i) {
        if (scanned[i] == 0) {
            ++run;
            continue;
        }
        events.push_back({run, scanned[i], false});
        run = 0;
    }
    if (!events.empty())
        events.back().last = true;
    return events;
}

void
runLengthDecode(const std::vector<RunLevel> &events, Block &scanned,
                int first)
{
    for (int i = first; i < kBlockSize; ++i)
        scanned[i] = 0;
    int pos = first;
    for (const RunLevel &e : events) {
        pos += e.run;
        M4PS_ASSERT(pos < kBlockSize, "run-level overflow at pos ", pos);
        M4PS_ASSERT(e.level != 0, "zero level event");
        scanned[pos] = static_cast<int16_t>(e.level);
        ++pos;
    }
}

void
writeBlockEvents(bits::BitWriter &bw, const std::vector<RunLevel> &events)
{
    M4PS_ASSERT(!events.empty(), "coded block must have events");
    for (const RunLevel &e : events) {
        bw.putBit(e.last);
        bits::putUe(bw, static_cast<uint32_t>(e.run));
        bits::putUe(bw, static_cast<uint32_t>(std::abs(e.level) - 1));
        bw.putBit(e.level < 0);
    }
}

std::vector<RunLevel>
readBlockEvents(bits::BitReader &br)
{
    std::vector<RunLevel> events;
    bool last = false;
    while (!last && !br.overrun() && events.size() < kBlockSize) {
        RunLevel e;
        e.last = br.getBit();
        e.run = static_cast<int>(bits::getUe(br));
        const int mag = static_cast<int>(bits::getUe(br)) + 1;
        e.level = br.getBit() ? -mag : mag;
        last = e.last;
        events.push_back(e);
    }
    return events;
}

} // namespace m4ps::codec
