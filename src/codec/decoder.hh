/**
 * @file
 * Top-level MPEG-4 visual decoder.
 *
 * "The decoder reads a stream of bits looking for the unique bit
 * patterns called startcodes that mark the divisions between
 * different sections of data in the hierarchical structure" (paper
 * §2.1).  Mpeg4Decoder demuxes the elementary stream produced by
 * Mpeg4Encoder, drives one VolDecoder per (VO, VOL), reconstructs
 * enhancement layers from upsampled base reconstructions, and hands
 * display-order frames to a caller-supplied sink.
 */

#ifndef M4PS_CODEC_DECODER_HH
#define M4PS_CODEC_DECODER_HH

#include <functional>
#include <memory>
#include <vector>

#include "codec/vol.hh"

namespace m4ps::codec
{

/** One displayed frame handed to the sink. */
struct DecodedEvent
{
    int voId = 0;
    int volId = 0;        //!< Highest decoded layer for this VO.
    int timestamp = 0;
    const video::Yuv420Image *frame = nullptr;
    const video::Plane *alpha = nullptr;
};

/** One recorded decode failure (tolerant mode). */
struct DecodeIncident
{
    DecodeErrorKind kind = DecodeErrorKind::CorruptVop;
    uint64_t bitPos = 0; //!< Where in the stream it was detected.
    std::string what;
};

/** Incidents kept per decode; later ones are counted but dropped. */
constexpr size_t kMaxIncidents = 32;

/** Aggregate decoding statistics. */
struct DecodeStats
{
    int vos = 0;
    int volsPerVo = 0;
    int vops = 0;
    int corruptedVops = 0; //!< Tolerant mode: sections skipped.
    int headerErrors = 0;  //!< Tolerant mode: damaged header sections.
    int displayed = 0;
    VopStats mb;
    uint64_t totalBits = 0;

    /** First kMaxIncidents failures, in stream order. */
    std::vector<DecodeIncident> incidents;
};

/** Multi-VO, multi-layer MPEG-4 visual decoder. */
class Mpeg4Decoder
{
  public:
    /**
     * Called once per displayed frame, in display order per VO.  The
     * frame/alpha pointers are valid only during the call.
     */
    using Sink = std::function<void(const DecodedEvent &)>;

    explicit Mpeg4Decoder(memsim::SimContext &ctx);

    /**
     * Decode a complete elementary stream, emitting display frames
     * through @p sink (which may be empty).
     *
     * In strict mode (default) the first corrupt section throws a
     * DecodeError classifying what went wrong.  With opts.tolerant
     * the decoder instead records the failure in DecodeStats,
     * resynchronizes at the next startcode or resync marker, and
     * conceals the damage - the behaviour a streaming player needs
     * on a lossy channel.  Header fields are validated against
     * opts.limits before any allocation they would size.
     */
    DecodeStats decode(const std::vector<uint8_t> &stream,
                       const Sink &sink, const DecodeOptions &opts);

    /** Convenience overload: default limits, strictness by flag. */
    DecodeStats decode(const std::vector<uint8_t> &stream,
                       const Sink &sink, bool tolerant = false);

  private:
    struct VoState
    {
        std::unique_ptr<VolDecoder> base;
        std::unique_ptr<VolDecoder> enh;
        video::Yuv420Image upsampled;
        int lastBaseTs = -1;
    };

    /**
     * Parse the VOS/VO/VOL header section, filling @p vos and
     * @p layers progressively so a tolerant caller keeps whatever
     * parsed before a DecodeError was thrown.
     */
    void parseHeaders(bits::BitReader &br, std::vector<VoState> &vos,
                      int &layers, DecodeStats &stats,
                      const DecodeOptions &opts);

    memsim::SimContext &ctx_;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_DECODER_HH
