/**
 * @file
 * Elementary-stream manipulation without re-encoding.
 *
 * Scalable and object-based streams exist so that receivers and
 * network elements can adapt content by *dropping sections*: a
 * bandwidth-constrained path forwards only the base layer, a simple
 * terminal skips foreground objects.  Because every section of the
 * stream is startcode-delimited and byte-aligned, these operations
 * are pure demux/remux - exactly how MPEG-4 transport works.
 */

#ifndef M4PS_CODEC_STREAMTOOLS_HH
#define M4PS_CODEC_STREAMTOOLS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace m4ps::codec
{

/** One startcode-delimited section of an elementary stream. */
struct StreamSection
{
    uint8_t code = 0;   //!< Startcode byte (0x00..0xff).
    size_t offset = 0;  //!< Byte offset of the 0x000001 prefix.
    size_t size = 0;    //!< Bytes up to the next startcode / end.

    /** VOP sections carry ids parsed from their header. */
    int voId = -1;
    int volId = -1;
};

/** Parse the startcode-delimited section structure of a stream. */
std::vector<StreamSection> parseSections(
    const std::vector<uint8_t> &stream);

/**
 * Keep only VOPs and VOL headers of layers <= @p max_vol_id,
 * rewriting the per-VO layer counts.  extract with @p max_vol_id = 0
 * turns a spatially scalable stream into a decodable base-layer
 * stream (at base resolution).
 */
std::vector<uint8_t> extractLayers(const std::vector<uint8_t> &stream,
                                   int max_vol_id);

/** Convenience: base layer only. */
inline std::vector<uint8_t>
extractBaseLayer(const std::vector<uint8_t> &stream)
{
    return extractLayers(stream, 0);
}

/**
 * Keep only the first @p num_vos visual objects (a receiver that
 * ignores trailing foreground objects).  The retained VOs keep
 * their ids, so @p num_vos must be a prefix of the original set.
 */
std::vector<uint8_t> extractVoPrefix(const std::vector<uint8_t> &stream,
                                     int num_vos);

} // namespace m4ps::codec

#endif // M4PS_CODEC_STREAMTOOLS_HH
