/**
 * @file
 * Adaptive binary arithmetic coding.
 *
 * MPEG-4 codes arbitrary shapes "using a context-based arithmetic
 * encoding scheme" (paper §2.1).  This is a 32-bit range coder with
 * adaptive per-context probabilities; the shape coder supplies the
 * context modelling (codec/shape.hh).  We adapt probabilities online
 * instead of transcribing the standard's fixed CAE probability
 * table - same algorithmic structure and memory behaviour, slightly
 * different compressed size (DESIGN.md §5).
 *
 * The carry-propagation scheme (cache byte plus a counted run of
 * 0xff bytes) follows the classic LZMA range coder; the encoder's
 * first output byte is a dummy zero that primes the decoder's code
 * register.
 */

#ifndef M4PS_CODEC_ARITH_HH
#define M4PS_CODEC_ARITH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace m4ps::codec
{

/** Adaptive probability state for one context. */
struct ArithContext
{
    /** P(bit = 0) in 1/65536 units. */
    uint16_t p0 = 1 << 15;

    /** Update toward the observed bit. */
    void
    adapt(bool bit)
    {
        // Shift-based exponential decay; floor/ceiling keep the
        // probability away from 0 and 1 so coding stays lossless.
        if (bit)
            p0 -= p0 >> 5;
        else
            p0 += (65535 - p0) >> 5;
        if (p0 < 64)
            p0 = 64;
        if (p0 > 65536 - 64)
            p0 = 65536 - 64;
    }
};

/** Range encoder producing a byte buffer. */
class ArithEncoder
{
  public:
    ArithEncoder() = default;

    /** Encode @p bit under @p ctx and adapt the context. */
    void encodeBit(ArithContext &ctx, bool bit);

    /** Encode @p bit with fixed 1/2 probability (no context). */
    void encodeBypass(bool bit);

    /** Flush the final range state and return the bytes. */
    std::vector<uint8_t> finish();

    /** Bytes emitted so far (grows as the range renormalizes). */
    size_t bytesEmitted() const { return out_.size(); }

  private:
    void shiftLow();
    void renormalize();

    uint64_t low_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint8_t cache_ = 0;
    uint64_t cacheSize_ = 1;
    std::vector<uint8_t> out_;
    bool finished_ = false;
};

/** Range decoder mirroring ArithEncoder. */
class ArithDecoder
{
  public:
    ArithDecoder(const uint8_t *data, size_t size);

    explicit ArithDecoder(const std::vector<uint8_t> &buf)
        : ArithDecoder(buf.data(), buf.size()) {}

    /** Decode one bit under @p ctx and adapt the context. */
    bool decodeBit(ArithContext &ctx);

    /** Decode one bypass bit. */
    bool decodeBypass();

    /** Bytes consumed from the input so far. */
    size_t bytesConsumed() const { return pos_; }

  private:
    void renormalize();
    uint8_t nextByte();

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint64_t code_ = 0;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_ARITH_HH
