#include "codec/interp.hh"

#include "codec/kernels/kernels.hh"

#include <algorithm>

#include "support/logging.hh"

namespace m4ps::codec
{

void
HalfPelPlanes::build(const video::Plane &src,
                     const video::Rect &region, int pad)
{
    M4PS_ASSERT(!h_.empty(), "HalfPelPlanes not allocated");
    M4PS_ASSERT(src.width() == h_.width() &&
                src.height() == h_.height(),
                "HalfPelPlanes size mismatch");
    const int w = src.width();
    const int hgt = src.height();
    const int x_lo = std::max(region.x - pad, 0);
    const int y_lo = std::max(region.y - pad, 0);
    const int x_hi = std::min(region.x + region.w + pad, w);
    const int y_hi = std::min(region.y + region.h + pad, hgt);
    const int span = x_hi - x_lo;
    if (span <= 0 || y_hi <= y_lo)
        return;

    // The reference decoder first copies the reconstruction into a
    // border-padded image before interpolating; model that pass.
    for (int y = y_lo; y < y_hi; ++y) {
        src.traceLoadRow(x_lo, y, span);
        h_.traceStoreRow(x_lo, y, span); // stands for the padded copy
    }
    const kernels::KernelOps &k = kernels::active();
    // The kernel handles the interior span (x + 1 unclamped); only
    // the plane's last column needs the x1 = x clamp, peeled below.
    const int interior = x_hi == w ? span - 1 : span;
    for (int y = y_lo; y < y_hi; ++y) {
        const int y1 = std::min(y + 1, hgt - 1);
        src.traceLoadRow(x_lo, y, span);
        if (y1 != y)
            src.traceLoadRow(x_lo, y1, span);
        const uint8_t *r0 = src.rowPtr(y);
        const uint8_t *r1 = src.rowPtr(y1);
        uint8_t *ph = h_.rowPtr(y);
        uint8_t *pv = v_.rowPtr(y);
        uint8_t *phv = hv_.rowPtr(y);
        // Identical rounding to the on-the-fly path in
        // codec/motion.cc (predictBlock / sad16HalfPel).
        if (interior > 0)
            k.interpRow(r0 + x_lo, r1 + x_lo, interior, ph + x_lo,
                        pv + x_lo, phv + x_lo);
        for (int x = x_lo + interior; x < x_hi; ++x) {
            const int x1 = std::min(x + 1, w - 1);
            ph[x] = static_cast<uint8_t>((r0[x] + r0[x1] + 1) >> 1);
            pv[x] = static_cast<uint8_t>((r0[x] + r1[x] + 1) >> 1);
            phv[x] = static_cast<uint8_t>(
                (r0[x] + r0[x1] + r1[x] + r1[x1] + 2) >> 2);
        }
        h_.traceStoreRow(x_lo, y, span);
        v_.traceStoreRow(x_lo, y, span);
        hv_.traceStoreRow(x_lo, y, span);
    }
}

} // namespace m4ps::codec
