/**
 * @file
 * Decode-error signalling and decode policy.
 *
 * Streaming delivery (the paper's motivating scenario) implies
 * damaged bitstreams.  Syntax-level failures raise StreamError;
 * failures classified by the top-level decoder carry a
 * DecodeErrorKind so callers can report what went wrong.  Whether an
 * error aborts the decode (strict) or is concealed and recorded
 * (tolerant) is policy, expressed through DecodeOptions rather than
 * control flow inside the parser; DecodeLimits bounds every
 * allocation a header field can request, so a flipped bit can never
 * turn into a multi-gigabyte frame store.  See docs/RESILIENCE.md.
 */

#ifndef M4PS_CODEC_ERROR_HH
#define M4PS_CODEC_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace m4ps::codec
{

/** A syntax or bounds violation while parsing the bitstream. */
class StreamError : public std::runtime_error
{
  public:
    explicit StreamError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** What a DecodeError is about, coarsest structure first. */
enum class DecodeErrorKind
{
    BadSequenceHeader, //!< VOS startcode / VO count damaged.
    BadVoHeader,       //!< VO startcode / layer count damaged.
    BadVolHeader,      //!< VOL header syntax or semantics damaged.
    LimitExceeded,     //!< A header field exceeds DecodeLimits.
    BadVopHeader,      //!< VOP header implausible or truncated.
    CorruptVop,        //!< VOP payload failed to parse.
    CorruptPacket,     //!< A video packet inside a VOP was lost.
    Truncated,         //!< The stream ended mid-section.
};

/** Stable display name for a DecodeErrorKind. */
inline const char *
decodeErrorKindName(DecodeErrorKind kind)
{
    switch (kind) {
      case DecodeErrorKind::BadSequenceHeader: return "bad-sequence-header";
      case DecodeErrorKind::BadVoHeader:       return "bad-vo-header";
      case DecodeErrorKind::BadVolHeader:      return "bad-vol-header";
      case DecodeErrorKind::LimitExceeded:     return "limit-exceeded";
      case DecodeErrorKind::BadVopHeader:      return "bad-vop-header";
      case DecodeErrorKind::CorruptVop:        return "corrupt-vop";
      case DecodeErrorKind::CorruptPacket:     return "corrupt-packet";
      case DecodeErrorKind::Truncated:         return "truncated";
    }
    return "unknown";
}

/**
 * A classified decode failure.  Layered on StreamError so the
 * lower-level parsers (which know syntax, not structure) keep
 * throwing StreamError and the top-level decoder wraps what escapes.
 */
class DecodeError : public StreamError
{
  public:
    DecodeError(DecodeErrorKind kind, const std::string &what)
        : StreamError(std::string(decodeErrorKindName(kind)) + ": " +
                      what),
          kind_(kind)
    {}

    DecodeErrorKind kind() const { return kind_; }

  private:
    DecodeErrorKind kind_;
};

/**
 * Resource bounds a decoder enforces before acting on header fields.
 * Every limit is checked before the allocation it protects.
 */
struct DecodeLimits
{
    int maxWidth = 4096;       //!< Per-VOL luma width in pixels.
    int maxHeight = 4096;      //!< Per-VOL luma height in pixels.
    int maxVos = 16;           //!< Visual objects per sequence.
    int maxLayersPerVo = 2;    //!< VOLs per VO.

    /**
     * Upper bound on the frame stores one VOL decoder allocates
     * (anchors, B store, half-pel planes, upsampled base), estimated
     * before construction.
     */
    uint64_t maxFrameStoreBytes = 512ull << 20;

    /**
     * Bit budget for the sequence/VO/VOL header section; parsing
     * that wanders past it (e.g. scanning a corrupt prefix for
     * startcodes that never validate) is cut off.
     */
    uint64_t maxHeaderBits = 1ull << 23;
};

/** Decode policy: strictness plus resource limits. */
struct DecodeOptions
{
    /**
     * Tolerant decoders record errors in DecodeStats, resynchronize,
     * and conceal; strict decoders (default) throw DecodeError at
     * the first failure.
     */
    bool tolerant = false;

    DecodeLimits limits;
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_ERROR_HH
