/**
 * @file
 * Decode-error signalling.
 *
 * Streaming delivery (the paper's motivating scenario) implies
 * damaged bitstreams.  Syntax-level failures inside a VOP raise
 * StreamError; Mpeg4Decoder either converts that to fatal() (strict
 * mode, the default) or resynchronizes at the next startcode and
 * conceals the lost VOP (tolerant mode).
 */

#ifndef M4PS_CODEC_ERROR_HH
#define M4PS_CODEC_ERROR_HH

#include <stdexcept>
#include <string>

namespace m4ps::codec
{

/** A syntax or bounds violation while parsing the bitstream. */
class StreamError : public std::runtime_error
{
  public:
    explicit StreamError(const std::string &what)
        : std::runtime_error(what)
    {}
};

} // namespace m4ps::codec

#endif // M4PS_CODEC_ERROR_HH
