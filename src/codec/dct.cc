#include "codec/dct.hh"

#include "codec/kernels/kernels.hh"

namespace m4ps::codec
{

// The 8x8 transform bodies live in the kernel layer
// (codec/kernels/): one scalar reference plus bit-identical SIMD
// backends selected at runtime.  See kernels.hh for the identity
// contract that lets vectorized doubles reproduce the scalar stream.

void
forwardDct(const Block &in, Block &out)
{
    kernels::active().fdct(in.data(), out.data());
}

void
inverseDct(const Block &in, Block &out)
{
    kernels::active().idct(in.data(), out.data());
}

} // namespace m4ps::codec
