#include "codec/dct.hh"

#include <algorithm>
#include <cmath>

namespace m4ps::codec
{

namespace
{

/** cos((2x+1) u pi / 16) basis, scaled by the 1/2 c(u) factor. */
struct DctTables
{
    double basis[kBlockEdge][kBlockEdge]; //!< [u][x]

    DctTables()
    {
        for (int u = 0; u < kBlockEdge; ++u) {
            const double cu = u == 0 ? std::sqrt(0.125) : 0.5;
            for (int x = 0; x < kBlockEdge; ++x) {
                basis[u][x] = cu * std::cos((2 * x + 1) * u * M_PI / 16.0);
            }
        }
    }
};

const DctTables tables;

} // namespace

void
forwardDct(const Block &in, Block &out)
{
    double tmp[kBlockSize];
    // Rows.
    for (int y = 0; y < kBlockEdge; ++y) {
        for (int u = 0; u < kBlockEdge; ++u) {
            double acc = 0;
            for (int x = 0; x < kBlockEdge; ++x)
                acc += tables.basis[u][x] * in[y * kBlockEdge + x];
            tmp[y * kBlockEdge + u] = acc;
        }
    }
    // Columns.
    for (int u = 0; u < kBlockEdge; ++u) {
        for (int v = 0; v < kBlockEdge; ++v) {
            double acc = 0;
            for (int y = 0; y < kBlockEdge; ++y)
                acc += tables.basis[v][y] * tmp[y * kBlockEdge + u];
            const double r = std::clamp(acc, -32768.0, 32767.0);
            out[v * kBlockEdge + u] =
                static_cast<int16_t>(std::lround(r));
        }
    }
}

void
inverseDct(const Block &in, Block &out)
{
    double tmp[kBlockSize];
    // Columns.
    for (int u = 0; u < kBlockEdge; ++u) {
        for (int y = 0; y < kBlockEdge; ++y) {
            double acc = 0;
            for (int v = 0; v < kBlockEdge; ++v)
                acc += tables.basis[v][y] * in[v * kBlockEdge + u];
            tmp[y * kBlockEdge + u] = acc;
        }
    }
    // Rows.
    for (int y = 0; y < kBlockEdge; ++y) {
        for (int x = 0; x < kBlockEdge; ++x) {
            double acc = 0;
            for (int u = 0; u < kBlockEdge; ++u)
                acc += tables.basis[u][x] * tmp[y * kBlockEdge + u];
            const double r = std::clamp(std::round(acc), -2048.0, 2047.0);
            out[y * kBlockEdge + x] = static_cast<int16_t>(r);
        }
    }
}

} // namespace m4ps::codec
