/**
 * @file
 * Runtime-dispatched pel/coefficient kernels for the hot codec loops.
 *
 * The paper deliberately measures MPEG-4 on *non-SIMD* general-purpose
 * hardware; this layer is the controlled experiment that adds SIMD
 * back.  The inner loops of motion estimation (16x16/8x8 SAD with
 * half-pel variants), the 8x8 DCT/IDCT, quantization, half-pel plane
 * interpolation, and the concealment/prediction copies are factored
 * into a table of function pointers (KernelOps) with one
 * implementation per instruction set: portable scalar (the reference,
 * always compiled), SSE4.1 and AVX2 on x86-64, NEON on AArch64.  The
 * backend is chosen once at startup - CPUID-based feature detection
 * picks the widest supported set - and can be forced with
 * `--kernels=<name>` on the tools or the M4PS_KERNELS environment
 * variable (docs/KERNELS.md).
 *
 * Two contracts every backend must honour:
 *
 *  1. **Bit-identity.**  A kernel returns *exactly* the scalar
 *     reference's result for every input.  Integer kernels get this
 *     for free; the double-precision DCT keeps it by vectorizing
 *     *across outputs* (one output per SIMD lane) so each lane
 *     executes the scalar accumulation order, with separate
 *     multiply-then-add (never FMA) and a scalar rounding epilogue.
 *     The golden-bitstream conformance suite runs every compiled-in
 *     backend against the same digests.
 *
 *  2. **The memsim trace stream stays scalar-canonical.**  Kernels
 *     operate on raw row pointers only; every traceLoadRow /
 *     traceStoreRow call stays in the caller, outside this layer, so
 *     the simulated access stream - and therefore every Table-2..7
 *     metric - is identical no matter which backend computes.  SAD
 *     early exit is likewise decided in the caller from per-row
 *     partial sums, which are exact, so even the *set* of traced rows
 *     cannot diverge.
 *
 * Layout mirrors ViterbiDecoderCpp's helpers/simd_type.h +
 * decoder_factories.h: an ISA enum, per-ISA factory functions compiled
 * in their own translation units with per-file architecture flags, and
 * a small registry that maps names to tables.
 */

#ifndef M4PS_CODEC_KERNELS_KERNELS_HH
#define M4PS_CODEC_KERNELS_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace m4ps::codec::kernels
{

/** Instruction sets a kernel table can be built for. */
enum class Isa
{
    Scalar = 0, //!< Portable reference; always compiled in.
    Sse41,      //!< x86-64, 128-bit integer + double lanes.
    Avx2,       //!< x86-64, 256-bit.
    Neon,       //!< AArch64, 128-bit.
};

/** Quantizer configuration handed to the quant/dequant kernels. */
struct QuantArgs
{
    int q = 1;                  //!< Quantizer step, 1..31.
    bool intra = false;         //!< Intra block (no dead zone).
    bool mpeg = false;          //!< MPEG weighting-matrix mode.
    const int *matrix = nullptr;//!< 64-entry weight matrix when mpeg.
};

/**
 * The dispatch table.  All row kernels take raw pointers the caller
 * has already offset into (traced) plane storage; `n` counts pels.
 * Half-pel kernels read one extra sample right (`hx`) and take a
 * second row pointer for below (`hy`); when hy == 0 the caller may
 * pass r0 again for r1.
 */
struct KernelOps
{
    const char *name; //!< Backend name ("scalar", "avx2", ...).

    // --- Motion estimation -----------------------------------------
    /** Sum of absolute differences over one 16-pel row. */
    int (*sadRow16)(const uint8_t *c, const uint8_t *r);
    /** SAD over one 8-pel row. */
    int (*sadRow8)(const uint8_t *c, const uint8_t *r);
    /** 16-pel row SAD against the (hx, hy) half-pel interpolation. */
    int (*sadRowHpel16)(const uint8_t *c, const uint8_t *r0,
                        const uint8_t *r1, int hx, int hy);
    /** 8-pel variant of sadRowHpel16. */
    int (*sadRowHpel8)(const uint8_t *c, const uint8_t *r0,
                       const uint8_t *r1, int hx, int hy);
    /** Sum of one 16-pel row (mode-decision activity). */
    int (*sumRow16)(const uint8_t *c);
    /** Sum of |c[i] - mean| over one 16-pel row. */
    int (*absDevRow16)(const uint8_t *c, uint8_t mean);

    // --- Texture ---------------------------------------------------
    /** Forward 8x8 DCT, 64 int16 row-major in/out (codec/dct.hh). */
    void (*fdct)(const int16_t *in, int16_t *out);
    /** Inverse 8x8 DCT, output clamped to [-2048, 2047]. */
    void (*idct)(const int16_t *in, int16_t *out);
    /**
     * Quantize coefficients [start, 64) in place of codec/quant.cc's
     * loop; the intra-DC coefficient is the caller's business.
     */
    void (*quant)(const int16_t *coefs, int16_t *levels, int start,
                  const QuantArgs &qa);
    /** Inverse of quant over [start, 64). */
    void (*dequant)(const int16_t *levels, int16_t *coefs, int start,
                    const QuantArgs &qa);

    // --- Prediction / interpolation / concealment ------------------
    /**
     * Motion-compensated prediction of one row: out[i] is r0/r1
     * bilinear at half-pel phase (hx, hy), n in {8, 16}.
     */
    void (*predictRow)(const uint8_t *r0, const uint8_t *r1, int hx,
                       int hy, int n, uint8_t *out);
    /**
     * Half-pel plane interpolation over an interior span: h/v/hv get
     * the three phases for i in [0, n); r0[n] and r1[n] must be
     * readable (the caller peels the clamped last column).
     */
    void (*interpRow)(const uint8_t *r0, const uint8_t *r1, int n,
                      uint8_t *h, uint8_t *v, uint8_t *hv);
    /** out[i] = (a[i] + b[i] + 1) >> 1 (B-VOP bidirectional mode). */
    void (*avgRow)(const uint8_t *a, const uint8_t *b, int n,
                   uint8_t *out);
    /** Plain pel copy (concealment block placement). */
    void (*copyRow)(const uint8_t *src, int n, uint8_t *dst);
    /** Sum of squared differences (PSNR helpers); exact in uint64. */
    uint64_t (*ssdRow)(const uint8_t *a, const uint8_t *b, int n);
};

/** Backend name for an ISA ("scalar", "sse41", "avx2", "neon"). */
const char *isaName(Isa isa);

/** ISAs whose kernels were compiled into this binary. */
std::vector<Isa> compiledIsas();

/** Whether the running host can execute @p isa kernels. */
bool hostSupports(Isa isa);

/** Widest compiled-in ISA the host supports (the "auto" choice). */
Isa bestSupported();

/**
 * The active kernel table.  First use resolves the M4PS_KERNELS
 * environment variable ("scalar", "sse41", "avx2", "neon", or "auto",
 * the default); see select() for the fallback rules.
 */
const KernelOps &active();

/** ISA of the active table. */
Isa activeIsa();

/**
 * Select a backend by name.  "auto" picks bestSupported().  A known
 * ISA that is not compiled in or not supported by the host degrades
 * to scalar with a warn() - a forced run on the wrong machine should
 * measure *something* rather than die.  An unknown name throws
 * std::invalid_argument.  Returns the ISA actually installed.
 * Call before spinning up codec work; the table pointer itself is
 * atomic, but switching mid-encode mixes backends between rows.
 */
Isa select(const std::string &name);

/** Per-ISA table getters (null when not compiled in). */
const KernelOps *opsFor(Isa isa);

} // namespace m4ps::codec::kernels

#endif // M4PS_CODEC_KERNELS_KERNELS_HH
