/**
 * @file
 * Portable scalar kernel backend: the reference every SIMD backend
 * must match bit-for-bit.  These bodies are the original inner loops
 * of codec/motion.cc, codec/dct.cc, codec/quant.cc, and
 * codec/interp.cc, lifted verbatim onto raw row pointers; the callers
 * keep the memsim trace calls (kernels.hh contract 2).
 */

#include "codec/kernels/kernels_internal.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace m4ps::codec::kernels
{

const DctTables &
dctTables()
{
    static const DctTables tables = [] {
        DctTables t;
        for (int u = 0; u < 8; ++u) {
            const double cu = u == 0 ? std::sqrt(0.125) : 0.5;
            for (int x = 0; x < 8; ++x) {
                t.basis[u][x] =
                    cu * std::cos((2 * x + 1) * u * M_PI / 16.0);
                t.basisT[x][u] = t.basis[u][x];
            }
        }
        return t;
    }();
    return tables;
}

namespace scalar
{

int
sadRow16(const uint8_t *c, const uint8_t *r)
{
    int acc = 0;
    for (int i = 0; i < 16; ++i)
        acc += std::abs(static_cast<int>(c[i]) - r[i]);
    return acc;
}

int
sadRow8(const uint8_t *c, const uint8_t *r)
{
    int acc = 0;
    for (int i = 0; i < 8; ++i)
        acc += std::abs(static_cast<int>(c[i]) - r[i]);
    return acc;
}

namespace
{

inline int
sadRowHpelN(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
            int hx, int hy, int n)
{
    int acc = 0;
    for (int i = 0; i < n; ++i) {
        int p;
        if (hx && hy)
            p = (r0[i] + r0[i + 1] + r1[i] + r1[i + 1] + 2) >> 2;
        else if (hx)
            p = (r0[i] + r0[i + 1] + 1) >> 1;
        else if (hy)
            p = (r0[i] + r1[i] + 1) >> 1;
        else
            p = r0[i];
        acc += std::abs(static_cast<int>(c[i]) - p);
    }
    return acc;
}

} // namespace

int
sadRowHpel16(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
             int hx, int hy)
{
    return sadRowHpelN(c, r0, r1, hx, hy, 16);
}

int
sadRowHpel8(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
            int hx, int hy)
{
    return sadRowHpelN(c, r0, r1, hx, hy, 8);
}

int
sumRow16(const uint8_t *c)
{
    int acc = 0;
    for (int i = 0; i < 16; ++i)
        acc += c[i];
    return acc;
}

int
absDevRow16(const uint8_t *c, uint8_t mean)
{
    int acc = 0;
    for (int i = 0; i < 16; ++i)
        acc += std::abs(c[i] - mean);
    return acc;
}

void
fdct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double tmp[64];
    // Rows.
    for (int y = 0; y < 8; ++y) {
        for (int u = 0; u < 8; ++u) {
            double acc = 0;
            for (int x = 0; x < 8; ++x)
                acc += t.basis[u][x] * in[y * 8 + x];
            tmp[y * 8 + u] = acc;
        }
    }
    // Columns.
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            double acc = 0;
            for (int y = 0; y < 8; ++y)
                acc += t.basis[v][y] * tmp[y * 8 + u];
            const double r = std::clamp(acc, -32768.0, 32767.0);
            out[v * 8 + u] = static_cast<int16_t>(std::lround(r));
        }
    }
}

void
idct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double tmp[64];
    // Columns.
    for (int u = 0; u < 8; ++u) {
        for (int y = 0; y < 8; ++y) {
            double acc = 0;
            for (int v = 0; v < 8; ++v)
                acc += t.basis[v][y] * in[v * 8 + u];
            tmp[y * 8 + u] = acc;
        }
    }
    // Rows.
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            double acc = 0;
            for (int u = 0; u < 8; ++u)
                acc += t.basis[u][x] * tmp[y * 8 + u];
            const double r = std::clamp(std::round(acc), -2048.0, 2047.0);
            out[y * 8 + x] = static_cast<int16_t>(r);
        }
    }
}

namespace
{

inline int16_t
clampLevel(long v)
{
    return static_cast<int16_t>(std::clamp(v, -2047l, 2047l));
}

} // namespace

void
quantMpeg(const int16_t *coefs, int16_t *levels, int start,
          const QuantArgs &qa)
{
    const int q = qa.q;
    for (int i = start; i < 64; ++i) {
        const int c = coefs[i];
        const int mag = std::abs(c);
        // Scale by the matrix weight, then quantize by 2q.
        const long scaled = 16l * mag / qa.matrix[i];
        const long lvl =
            qa.intra ? (scaled + q) / (2 * q) : scaled / (2 * q);
        levels[i] = clampLevel(c < 0 ? -lvl : lvl);
    }
}

void
dequantMpeg(const int16_t *levels, int16_t *coefs, int start,
            const QuantArgs &qa)
{
    const int q = qa.q;
    for (int i = start; i < 64; ++i) {
        const int lvl = levels[i];
        if (lvl == 0) {
            coefs[i] = 0;
            continue;
        }
        const int mag = std::abs(lvl);
        long c = (2l * mag * q * qa.matrix[i]) / 16;
        if (!qa.intra)
            c += (q * qa.matrix[i]) / 16; // mid-rise reconstruction
        c = std::clamp(lvl < 0 ? -c : c, -2048l, 2047l);
        coefs[i] = static_cast<int16_t>(c);
    }
}

void
quantRange(const int16_t *coefs, int16_t *levels, int first, int last,
           const QuantArgs &qa)
{
    const int q = qa.q;
    for (int i = first; i < last; ++i) {
        const int c = coefs[i];
        const int mag = std::abs(c);
        // H.263 style: intra has no dead zone beyond truncation,
        // inter has a qp/2 dead zone.
        long lvl = qa.intra ? mag / (2 * q) : (mag - q / 2) / (2 * q);
        if (lvl < 0)
            lvl = 0;
        levels[i] = clampLevel(c < 0 ? -lvl : lvl);
    }
}

void
dequantRange(const int16_t *levels, int16_t *coefs, int first,
             int last, const QuantArgs &qa)
{
    const int q = qa.q;
    for (int i = first; i < last; ++i) {
        const int lvl = levels[i];
        if (lvl == 0) {
            coefs[i] = 0;
            continue;
        }
        const int mag = std::abs(lvl);
        long c = q * (2l * mag + 1);
        if (q % 2 == 0)
            c -= 1;
        c = std::clamp(lvl < 0 ? -c : c, -2048l, 2047l);
        coefs[i] = static_cast<int16_t>(c);
    }
}

void
quant(const int16_t *coefs, int16_t *levels, int start,
      const QuantArgs &qa)
{
    if (qa.mpeg) {
        quantMpeg(coefs, levels, start, qa);
        return;
    }
    quantRange(coefs, levels, start, 64, qa);
}

void
dequant(const int16_t *levels, int16_t *coefs, int start,
        const QuantArgs &qa)
{
    if (qa.mpeg) {
        dequantMpeg(levels, coefs, start, qa);
        return;
    }
    dequantRange(levels, coefs, start, 64, qa);
}

void
predictRow(const uint8_t *r0, const uint8_t *r1, int hx, int hy, int n,
           uint8_t *out)
{
    for (int i = 0; i < n; ++i) {
        int p;
        if (hx && hy)
            p = (r0[i] + r0[i + 1] + r1[i] + r1[i + 1] + 2) >> 2;
        else if (hx)
            p = (r0[i] + r0[i + 1] + 1) >> 1;
        else if (hy)
            p = (r0[i] + r1[i] + 1) >> 1;
        else
            p = r0[i];
        out[i] = static_cast<uint8_t>(p);
    }
}

void
interpRow(const uint8_t *r0, const uint8_t *r1, int n, uint8_t *h,
          uint8_t *v, uint8_t *hv)
{
    for (int i = 0; i < n; ++i) {
        h[i] = static_cast<uint8_t>((r0[i] + r0[i + 1] + 1) >> 1);
        v[i] = static_cast<uint8_t>((r0[i] + r1[i] + 1) >> 1);
        hv[i] = static_cast<uint8_t>(
            (r0[i] + r0[i + 1] + r1[i] + r1[i + 1] + 2) >> 2);
    }
}

void
avgRow(const uint8_t *a, const uint8_t *b, int n, uint8_t *out)
{
    for (int i = 0; i < n; ++i)
        out[i] = static_cast<uint8_t>((a[i] + b[i] + 1) >> 1);
}

void
copyRow(const uint8_t *src, int n, uint8_t *dst)
{
    std::memcpy(dst, src, static_cast<size_t>(n));
}

uint64_t
ssdRow(const uint8_t *a, const uint8_t *b, int n)
{
    uint64_t acc = 0;
    for (int i = 0; i < n; ++i) {
        const int d = static_cast<int>(a[i]) - b[i];
        acc += static_cast<uint64_t>(d * d);
    }
    return acc;
}

} // namespace scalar

const KernelOps &
scalarOps()
{
    static const KernelOps ops = {
        "scalar",
        scalar::sadRow16,
        scalar::sadRow8,
        scalar::sadRowHpel16,
        scalar::sadRowHpel8,
        scalar::sumRow16,
        scalar::absDevRow16,
        scalar::fdct,
        scalar::idct,
        scalar::quant,
        scalar::dequant,
        scalar::predictRow,
        scalar::interpRow,
        scalar::avgRow,
        scalar::copyRow,
        scalar::ssdRow,
    };
    return ops;
}

} // namespace m4ps::codec::kernels
