/**
 * @file
 * Backend-internal sharing for the kernel layer: the scalar reference
 * implementations (SIMD backends call them for tails and for the
 * division-per-coefficient MPEG-matrix quantizer, and the test suite
 * compares against them directly) and the DCT basis tables.
 *
 * Not part of the public API; include kernels.hh from codec code.
 */

#ifndef M4PS_CODEC_KERNELS_KERNELS_INTERNAL_HH
#define M4PS_CODEC_KERNELS_KERNELS_INTERNAL_HH

#include "codec/kernels/kernels.hh"

namespace m4ps::codec::kernels
{

/**
 * cos((2x+1) u pi / 16) basis scaled by the 1/2 c(u) factor, plus its
 * transpose.  One shared instance: every backend multiplies the same
 * doubles, which is half of the DCT bit-identity argument (the other
 * half is per-lane scalar operation order; see kernels.hh).
 */
struct DctTables
{
    double basis[8][8];  //!< [u][x]
    double basisT[8][8]; //!< [x][u]
};

const DctTables &dctTables();

namespace scalar
{

int sadRow16(const uint8_t *c, const uint8_t *r);
int sadRow8(const uint8_t *c, const uint8_t *r);
int sadRowHpel16(const uint8_t *c, const uint8_t *r0,
                 const uint8_t *r1, int hx, int hy);
int sadRowHpel8(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
                int hx, int hy);
int sumRow16(const uint8_t *c);
int absDevRow16(const uint8_t *c, uint8_t mean);
void fdct(const int16_t *in, int16_t *out);
void idct(const int16_t *in, int16_t *out);
void quant(const int16_t *coefs, int16_t *levels, int start,
           const QuantArgs &qa);
void dequant(const int16_t *levels, int16_t *coefs, int start,
             const QuantArgs &qa);
void predictRow(const uint8_t *r0, const uint8_t *r1, int hx, int hy,
                int n, uint8_t *out);
void interpRow(const uint8_t *r0, const uint8_t *r1, int n, uint8_t *h,
               uint8_t *v, uint8_t *hv);
void avgRow(const uint8_t *a, const uint8_t *b, int n, uint8_t *out);
void copyRow(const uint8_t *src, int n, uint8_t *dst);
uint64_t ssdRow(const uint8_t *a, const uint8_t *b, int n);

/** MPEG-matrix halves of quant/dequant, shared by every backend. */
void quantMpeg(const int16_t *coefs, int16_t *levels, int start,
               const QuantArgs &qa);
void dequantMpeg(const int16_t *levels, int16_t *coefs, int start,
                 const QuantArgs &qa);

/**
 * H.263-mode quant/dequant over [first, last): the scalar bodies,
 * exposed with an explicit end so SIMD backends can peel the
 * misaligned head (start is 1 for intra blocks) without giving up
 * the vector loop for the rest.
 */
void quantRange(const int16_t *coefs, int16_t *levels, int first,
                int last, const QuantArgs &qa);
void dequantRange(const int16_t *levels, int16_t *coefs, int first,
                  int last, const QuantArgs &qa);

} // namespace scalar

/** Per-backend table factories; defined in their own TUs. */
const KernelOps &scalarOps();
#if defined(M4PS_KERNELS_HAVE_SSE41)
const KernelOps &sse41Ops();
#endif
#if defined(M4PS_KERNELS_HAVE_AVX2)
const KernelOps &avx2Ops();
#endif
#if defined(M4PS_KERNELS_HAVE_NEON)
const KernelOps &neonOps();
#endif

} // namespace m4ps::codec::kernels

#endif // M4PS_CODEC_KERNELS_KERNELS_INTERNAL_HH
