/**
 * @file
 * Kernel backend registry and runtime selection.
 *
 * Mirrors ViterbiDecoderCpp's simd_type.h/decoder_factories.h split:
 * each backend lives in its own translation unit compiled with its
 * own architecture flags, and this file - compiled with the baseline
 * flags only - maps ISA names to tables and asks the host what it can
 * run.  On x86-64 detection goes through __builtin_cpu_supports,
 * which checks CPUID *and* OS support for the wider register state
 * (OSXSAVE/XGETBV); on AArch64 NEON is architecturally mandatory.
 *
 * The active table is a single atomic pointer: lock-free to read on
 * every kernel call, initialised lazily from the M4PS_KERNELS
 * environment variable, and replaceable via select() (used by the
 * --kernels tool flag and by tests that pin a backend).
 */

#include "codec/kernels/kernels_internal.hh"

#include "support/logging.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace m4ps::codec::kernels
{

namespace
{

const KernelOps *
tableFor(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return &scalarOps();
    case Isa::Sse41:
#if defined(M4PS_KERNELS_HAVE_SSE41)
        return &sse41Ops();
#else
        return nullptr;
#endif
    case Isa::Avx2:
#if defined(M4PS_KERNELS_HAVE_AVX2)
        return &avx2Ops();
#else
        return nullptr;
#endif
    case Isa::Neon:
#if defined(M4PS_KERNELS_HAVE_NEON)
        return &neonOps();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

struct ActiveState
{
    std::atomic<const KernelOps *> ops{nullptr};
    std::atomic<Isa> isa{Isa::Scalar};
    std::atomic<bool> initialized{false};
    std::mutex initMutex;
};

ActiveState &
state()
{
    static ActiveState s;
    return s;
}

/**
 * Install @p isa (must be compiled in and supported) and mark the
 * table explicitly chosen, so the lazy env-var init cannot later
 * overwrite a select() that ran before the first active() call.
 */
void
install(Isa isa)
{
    ActiveState &s = state();
    s.isa.store(isa, std::memory_order_relaxed);
    s.ops.store(tableFor(isa), std::memory_order_release);
    s.initialized.store(true, std::memory_order_release);
}

/** Resolve M4PS_KERNELS on the first read of the active table. */
void
ensureInit()
{
    ActiveState &s = state();
    if (s.initialized.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(s.initMutex);
    if (s.initialized.load(std::memory_order_acquire))
        return;
    const char *env = std::getenv("M4PS_KERNELS");
    if (env == nullptr || *env == '\0') {
        install(bestSupported());
        return;
    }
    try {
        select(env);
    } catch (const std::invalid_argument &) {
        m4ps::warn("M4PS_KERNELS=", env,
                   " is not a known backend; using auto");
        install(bestSupported());
    }
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Sse41:
        return "sse41";
    case Isa::Avx2:
        return "avx2";
    case Isa::Neon:
        return "neon";
    }
    return "?";
}

std::vector<Isa>
compiledIsas()
{
    std::vector<Isa> isas{Isa::Scalar};
#if defined(M4PS_KERNELS_HAVE_SSE41)
    isas.push_back(Isa::Sse41);
#endif
#if defined(M4PS_KERNELS_HAVE_AVX2)
    isas.push_back(Isa::Avx2);
#endif
#if defined(M4PS_KERNELS_HAVE_NEON)
    isas.push_back(Isa::Neon);
#endif
    return isas;
}

bool
hostSupports(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return true;
    case Isa::Sse41:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("sse4.1") != 0;
#else
        return false;
#endif
    case Isa::Avx2:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Isa::Neon:
#if defined(__aarch64__)
        return true; // NEON is mandatory in AArch64.
#else
        return false;
#endif
    }
    return false;
}

Isa
bestSupported()
{
    Isa best = Isa::Scalar;
    for (Isa isa : compiledIsas()) {
        if (hostSupports(isa))
            best = isa; // compiledIsas() is ordered narrow-to-wide
    }
    return best;
}

const KernelOps *
opsFor(Isa isa)
{
    return tableFor(isa);
}

const KernelOps &
active()
{
    ensureInit();
    return *state().ops.load(std::memory_order_acquire);
}

Isa
activeIsa()
{
    ensureInit();
    return state().isa.load(std::memory_order_relaxed);
}

Isa
select(const std::string &name)
{
    Isa wanted;
    if (name == "auto") {
        wanted = bestSupported();
    } else if (name == "scalar") {
        wanted = Isa::Scalar;
    } else if (name == "sse41") {
        wanted = Isa::Sse41;
    } else if (name == "avx2") {
        wanted = Isa::Avx2;
    } else if (name == "neon") {
        wanted = Isa::Neon;
    } else {
        throw std::invalid_argument("unknown kernel backend: " + name);
    }
    if (tableFor(wanted) == nullptr) {
        m4ps::warn("kernel backend ", isaName(wanted),
                   " not compiled in; falling back to scalar");
        wanted = Isa::Scalar;
    } else if (!hostSupports(wanted)) {
        m4ps::warn("kernel backend ", isaName(wanted),
                   " not supported by this host; falling back to "
                   "scalar");
        wanted = Isa::Scalar;
    }
    install(wanted);
    return wanted;
}

} // namespace m4ps::codec::kernels
