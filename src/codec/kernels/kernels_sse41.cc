/**
 * @file
 * SSE4.1 kernel backend (x86-64, 128-bit).
 *
 * Integer kernels are exact by construction, so any correct SSE
 * formulation matches scalar bit-for-bit: PSADBW *is* a row SAD,
 * PAVGB *is* the (a+b+1)>>1 half-pel rounding, and the four-point
 * average widens to 16-bit before the +2>>2 so nothing saturates.
 * The H.263 quantizer divides by the uniform 2q via float division:
 * with |num| <= 32768 and d <= 62 both operands are exact in float
 * and the correctly-rounded quotient is < 2^-9 ulp-relative away from
 * the true value while the nearest integer boundary is >= 1/62 away,
 * so truncation is exact (see docs/KERNELS.md for the argument).  The
 * per-coefficient-divisor MPEG-matrix mode stays on the scalar path.
 *
 * The double-precision DCT vectorizes across outputs - each 64-bit
 * lane runs the scalar accumulation order with separate mul/add
 * (this file is compiled without -mfma, so no contraction) - and
 * rounds through the same scalar epilogue, keeping bit-identity.
 *
 * Compiled with -msse4.1 only when the toolchain targets x86-64; the
 * dispatcher never installs this table unless CPUID agrees.
 */

#if defined(M4PS_KERNELS_HAVE_SSE41)

#include "codec/kernels/kernels_internal.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <smmintrin.h>

namespace m4ps::codec::kernels
{

namespace sse41
{

namespace
{

inline int
hsum_sad(__m128i s)
{
    return _mm_cvtsi128_si32(s) + _mm_extract_epi16(s, 4);
}

/** (a + b + c + d + 2) >> 2 for 8 pels widened through epi16. */
inline __m128i
avg4x8(__m128i a, __m128i b, __m128i c, __m128i d)
{
    const __m128i s = _mm_add_epi16(
        _mm_add_epi16(_mm_cvtepu8_epi16(a), _mm_cvtepu8_epi16(b)),
        _mm_add_epi16(_mm_cvtepu8_epi16(c), _mm_cvtepu8_epi16(d)));
    return _mm_srli_epi16(_mm_add_epi16(s, _mm_set1_epi16(2)), 2);
}

/** Half-pel interpolated row of 16 pels at phase (hx, hy). */
inline __m128i
hpel16(const uint8_t *r0, const uint8_t *r1, int hx, int hy)
{
    const __m128i a = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(r0));
    if (hx && hy) {
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r0 + 1));
        const __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r1));
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r1 + 1));
        const __m128i lo = avg4x8(a, b, c, d);
        const __m128i hi =
            avg4x8(_mm_srli_si128(a, 8), _mm_srli_si128(b, 8),
                   _mm_srli_si128(c, 8), _mm_srli_si128(d, 8));
        return _mm_packus_epi16(lo, hi);
    }
    if (hx) {
        return _mm_avg_epu8(a, _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r0 + 1)));
    }
    if (hy) {
        return _mm_avg_epu8(a, _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r1)));
    }
    return a;
}

/** Half-pel interpolated row of 8 pels (low lanes; high lanes 0). */
inline __m128i
hpel8(const uint8_t *r0, const uint8_t *r1, int hx, int hy)
{
    const __m128i a = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(r0));
    if (hx && hy) {
        const __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r0 + 1));
        const __m128i c = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r1));
        const __m128i d = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r1 + 1));
        return _mm_packus_epi16(avg4x8(a, b, c, d),
                                _mm_setzero_si128());
    }
    if (hx) {
        return _mm_avg_epu8(a, _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r0 + 1)));
    }
    if (hy) {
        return _mm_avg_epu8(a, _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r1)));
    }
    return a;
}

} // namespace

int
sadRow16(const uint8_t *c, const uint8_t *r)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    const __m128i rv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(r));
    return hsum_sad(_mm_sad_epu8(cv, rv));
}

int
sadRow8(const uint8_t *c, const uint8_t *r)
{
    const __m128i cv = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(c));
    const __m128i rv = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(r));
    return _mm_cvtsi128_si32(_mm_sad_epu8(cv, rv));
}

int
sadRowHpel16(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
             int hx, int hy)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    return hsum_sad(_mm_sad_epu8(cv, hpel16(r0, r1, hx, hy)));
}

int
sadRowHpel8(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
            int hx, int hy)
{
    const __m128i cv = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(c));
    return _mm_cvtsi128_si32(
        _mm_sad_epu8(cv, hpel8(r0, r1, hx, hy)));
}

int
sumRow16(const uint8_t *c)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    return hsum_sad(_mm_sad_epu8(cv, _mm_setzero_si128()));
}

int
absDevRow16(const uint8_t *c, uint8_t mean)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    const __m128i mv = _mm_set1_epi8(static_cast<char>(mean));
    return hsum_sad(_mm_sad_epu8(cv, mv));
}

void
predictRow(const uint8_t *r0, const uint8_t *r1, int hx, int hy, int n,
           uint8_t *out)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         hpel16(r0 + i, r1 + i, hx, hy));
    }
    for (; i + 8 <= n; i += 8) {
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i),
                         hpel8(r0 + i, r1 + i, hx, hy));
    }
    if (i < n)
        scalar::predictRow(r0 + i, r1 + i, hx, hy, n - i, out + i);
}

void
interpRow(const uint8_t *r0, const uint8_t *r1, int n, uint8_t *h,
          uint8_t *v, uint8_t *hv)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r0 + i));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r0 + i + 1));
        const __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r1 + i));
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r1 + i + 1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(h + i),
                         _mm_avg_epu8(a, b));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(v + i),
                         _mm_avg_epu8(a, c));
        const __m128i lo = avg4x8(a, b, c, d);
        const __m128i hi =
            avg4x8(_mm_srli_si128(a, 8), _mm_srli_si128(b, 8),
                   _mm_srli_si128(c, 8), _mm_srli_si128(d, 8));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(hv + i),
                         _mm_packus_epi16(lo, hi));
    }
    if (i < n)
        scalar::interpRow(r0 + i, r1 + i, n - i, h + i, v + i, hv + i);
}

void
avgRow(const uint8_t *a, const uint8_t *b, int n, uint8_t *out)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i av = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i bv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_avg_epu8(av, bv));
    }
    if (i < n)
        scalar::avgRow(a + i, b + i, n - i, out + i);
}

void
copyRow(const uint8_t *src, int n, uint8_t *dst)
{
    std::memcpy(dst, src, static_cast<size_t>(n));
}

uint64_t
ssdRow(const uint8_t *a, const uint8_t *b, int n)
{
    __m128i acc = _mm_setzero_si128(); // 2 x epi64
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i av = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i bv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        const __m128i dlo = _mm_sub_epi16(_mm_cvtepu8_epi16(av),
                                          _mm_cvtepu8_epi16(bv));
        const __m128i dhi =
            _mm_sub_epi16(_mm_cvtepu8_epi16(_mm_srli_si128(av, 8)),
                          _mm_cvtepu8_epi16(_mm_srli_si128(bv, 8)));
        // 8 squares -> 4 epi32 per half; widen to epi64 to accumulate
        // without overflow for any row length.
        const __m128i mlo = _mm_madd_epi16(dlo, dlo);
        const __m128i mhi = _mm_madd_epi16(dhi, dhi);
        const __m128i s32 = _mm_add_epi32(mlo, mhi);
        acc = _mm_add_epi64(acc, _mm_cvtepi32_epi64(s32));
        acc = _mm_add_epi64(acc,
                            _mm_cvtepi32_epi64(_mm_srli_si128(s32, 8)));
    }
    uint64_t lanes[2];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(lanes), acc);
    uint64_t total = lanes[0] + lanes[1];
    if (i < n)
        total += scalar::ssdRow(a + i, b + i, n - i);
    return total;
}

void
quant(const int16_t *coefs, int16_t *levels, int start,
      const QuantArgs &qa)
{
    if (qa.mpeg) {
        // Per-coefficient matrix divisor: no uniform reciprocal, so
        // the reference path stays authoritative.
        scalar::quantMpeg(coefs, levels, start, qa);
        return;
    }
    // Peel the misaligned head (start is 1 for intra blocks) to the
    // scalar loop, then vectorize the remaining full 8-lane chunks.
    int i = start;
    if (i & 7) {
        const int head = std::min((i + 7) & ~7, 64);
        scalar::quantRange(coefs, levels, i, head, qa);
        i = head;
    }
    const __m128i zero = _mm_setzero_si128();
    const __m128i dead =
        _mm_set1_epi32(qa.intra ? 0 : qa.q / 2);
    const __m128 inv = _mm_set1_ps(static_cast<float>(2 * qa.q));
    const __m128i cap = _mm_set1_epi32(2047);
    for (; i < 64; i += 8) {
        const __m128i cv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(coefs + i));
        const __m128i lo = _mm_cvtepi16_epi32(cv);
        const __m128i hi = _mm_cvtepi16_epi32(_mm_srli_si128(cv, 8));
        __m128i out[2];
        const __m128i cs[2] = {lo, hi};
        for (int half = 0; half < 2; ++half) {
            const __m128i c32 = cs[half];
            const __m128i mag = _mm_abs_epi32(c32);
            const __m128i num = _mm_sub_epi32(mag, dead);
            // Exact trunc(num / 2q) via float division (file header).
            const __m128i lvl = _mm_cvttps_epi32(
                _mm_div_ps(_mm_cvtepi32_ps(num), inv));
            __m128i l = _mm_max_epi32(lvl, zero);
            l = _mm_min_epi32(l, cap);
            out[half] = _mm_sign_epi32(l, c32);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(levels + i),
                         _mm_packs_epi32(out[0], out[1]));
    }
}

void
dequant(const int16_t *levels, int16_t *coefs, int start,
        const QuantArgs &qa)
{
    if (qa.mpeg) {
        scalar::dequantMpeg(levels, coefs, start, qa);
        return;
    }
    int i = start;
    if (i & 7) {
        const int head = std::min((i + 7) & ~7, 64);
        scalar::dequantRange(levels, coefs, i, head, qa);
        i = head;
    }
    const __m128i qv = _mm_set1_epi32(qa.q);
    const __m128i even = _mm_set1_epi32(qa.q % 2 == 0 ? 1 : 0);
    const __m128i one = _mm_set1_epi32(1);
    const __m128i lcap = _mm_set1_epi32(2047);
    const __m128i lfloor = _mm_set1_epi32(-2048);
    for (; i < 64; i += 8) {
        const __m128i lv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(levels + i));
        const __m128i lo = _mm_cvtepi16_epi32(lv);
        const __m128i hi = _mm_cvtepi16_epi32(_mm_srli_si128(lv, 8));
        __m128i out[2];
        const __m128i ls[2] = {lo, hi};
        for (int half = 0; half < 2; ++half) {
            const __m128i l32 = ls[half];
            const __m128i mag = _mm_abs_epi32(l32);
            // c = q * (2|lvl| + 1) - [q even]
            __m128i c = _mm_mullo_epi32(
                qv, _mm_add_epi32(_mm_slli_epi32(mag, 1), one));
            c = _mm_sub_epi32(c, even);
            // Zero where lvl == 0, negate where lvl < 0, then clamp.
            c = _mm_sign_epi32(c, l32);
            c = _mm_min_epi32(_mm_max_epi32(c, lfloor), lcap);
            out[half] = c;
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(coefs + i),
                         _mm_packs_epi32(out[0], out[1]));
    }
}

namespace
{

/**
 * 2-lane double accumulation helpers for the DCT passes.  Each lane
 * reproduces the scalar order: acc starts at 0 and takes a separate
 * multiply then add per step.
 */
inline void
dctRowsPass(const double *din, const DctTables &t, double *tmp)
{
    // tmp[y*8+u] = sum_x basis[u][x] * in[y*8+x]; lanes over u.
    for (int y = 0; y < 8; ++y) {
        __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(),
                          _mm_setzero_pd(), _mm_setzero_pd()};
        for (int x = 0; x < 8; ++x) {
            const __m128d vx = _mm_set1_pd(din[y * 8 + x]);
            for (int j = 0; j < 4; ++j) {
                const __m128d b =
                    _mm_loadu_pd(&t.basisT[x][2 * j]);
                acc[j] = _mm_add_pd(acc[j], _mm_mul_pd(vx, b));
            }
        }
        for (int j = 0; j < 4; ++j)
            _mm_storeu_pd(&tmp[y * 8 + 2 * j], acc[j]);
    }
}

} // namespace

void
fdct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double din[64];
    for (int i = 0; i < 64; ++i)
        din[i] = static_cast<double>(in[i]); // exact conversion
    double tmp[64];
    dctRowsPass(din, t, tmp);
    // Columns: out[v*8+u] from sum_y basis[v][y] * tmp[y*8+u];
    // lanes over u, broadcast basis[v][y].
    for (int v = 0; v < 8; ++v) {
        __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(),
                          _mm_setzero_pd(), _mm_setzero_pd()};
        for (int y = 0; y < 8; ++y) {
            const __m128d bv = _mm_set1_pd(t.basis[v][y]);
            for (int j = 0; j < 4; ++j) {
                const __m128d row = _mm_loadu_pd(&tmp[y * 8 + 2 * j]);
                acc[j] = _mm_add_pd(acc[j], _mm_mul_pd(bv, row));
            }
        }
        double vals[8];
        for (int j = 0; j < 4; ++j)
            _mm_storeu_pd(&vals[2 * j], acc[j]);
        for (int u = 0; u < 8; ++u) {
            const double r = std::clamp(vals[u], -32768.0, 32767.0);
            out[v * 8 + u] = static_cast<int16_t>(std::lround(r));
        }
    }
}

void
idct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double din[64];
    for (int i = 0; i < 64; ++i)
        din[i] = static_cast<double>(in[i]);
    double tmp[64];
    // Columns: tmp[y*8+u] = sum_v basis[v][y] * in[v*8+u]; lanes u.
    for (int y = 0; y < 8; ++y) {
        __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(),
                          _mm_setzero_pd(), _mm_setzero_pd()};
        for (int v = 0; v < 8; ++v) {
            const __m128d bv = _mm_set1_pd(t.basis[v][y]);
            for (int j = 0; j < 4; ++j) {
                const __m128d row = _mm_loadu_pd(&din[v * 8 + 2 * j]);
                acc[j] = _mm_add_pd(acc[j], _mm_mul_pd(bv, row));
            }
        }
        for (int j = 0; j < 4; ++j)
            _mm_storeu_pd(&tmp[y * 8 + 2 * j], acc[j]);
    }
    // Rows: out[y*8+x] = sum_u basis[u][x] * tmp[y*8+u]; lanes x.
    for (int y = 0; y < 8; ++y) {
        __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(),
                          _mm_setzero_pd(), _mm_setzero_pd()};
        for (int u = 0; u < 8; ++u) {
            const __m128d tu = _mm_set1_pd(tmp[y * 8 + u]);
            for (int j = 0; j < 4; ++j) {
                const __m128d b = _mm_loadu_pd(&t.basis[u][2 * j]);
                acc[j] = _mm_add_pd(acc[j], _mm_mul_pd(tu, b));
            }
        }
        double vals[8];
        for (int j = 0; j < 4; ++j)
            _mm_storeu_pd(&vals[2 * j], acc[j]);
        for (int x = 0; x < 8; ++x) {
            const double r =
                std::clamp(std::round(vals[x]), -2048.0, 2047.0);
            out[y * 8 + x] = static_cast<int16_t>(r);
        }
    }
}

} // namespace sse41

const KernelOps &
sse41Ops()
{
    static const KernelOps ops = {
        "sse41",
        sse41::sadRow16,
        sse41::sadRow8,
        sse41::sadRowHpel16,
        sse41::sadRowHpel8,
        sse41::sumRow16,
        sse41::absDevRow16,
        sse41::fdct,
        sse41::idct,
        sse41::quant,
        sse41::dequant,
        sse41::predictRow,
        sse41::interpRow,
        sse41::avgRow,
        sse41::copyRow,
        sse41::ssdRow,
    };
    return ops;
}

} // namespace m4ps::codec::kernels

#endif // M4PS_KERNELS_HAVE_SSE41
