/**
 * @file
 * AVX2 kernel backend (x86-64, 256-bit).
 *
 * Same bit-identity strategy as the SSE4.1 backend (see that file and
 * docs/KERNELS.md): exact integer formulations, float division by the
 * uniform 2q quantizer step (exact for this domain), and a DCT
 * vectorized across outputs - four double lanes per register, two
 * registers covering all eight outputs of a pass, each lane running
 * the scalar multiply-then-add order (no FMA: this file is compiled
 * with -mavx2 only).  Row kernels of 16 pels stay on 128-bit PSADBW /
 * PAVGB forms - a macroblock row does not fill a ymm - while the
 * wide-span kernels (interpolation, averaging, SSD) and the
 * coefficient kernels use full 256-bit lanes.
 */

#if defined(M4PS_KERNELS_HAVE_AVX2)

#include "codec/kernels/kernels_internal.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <immintrin.h>

namespace m4ps::codec::kernels
{

namespace avx2
{

namespace
{

inline int
hsum_sad(__m128i s)
{
    return _mm_cvtsi128_si32(s) + _mm_extract_epi16(s, 4);
}

/** (a + b + c + d + 2) >> 2 over 16 pels, widened through epi16. */
inline __m128i
avg4x16(__m128i a, __m128i b, __m128i c, __m128i d)
{
    const __m256i s = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_cvtepu8_epi16(a),
                         _mm256_cvtepu8_epi16(b)),
        _mm256_add_epi16(_mm256_cvtepu8_epi16(c),
                         _mm256_cvtepu8_epi16(d)));
    const __m256i r = _mm256_srli_epi16(
        _mm256_add_epi16(s, _mm256_set1_epi16(2)), 2);
    return _mm_packus_epi16(_mm256_castsi256_si128(r),
                            _mm256_extracti128_si256(r, 1));
}

/** Half-pel interpolated row of 16 pels at phase (hx, hy). */
inline __m128i
hpel16(const uint8_t *r0, const uint8_t *r1, int hx, int hy)
{
    const __m128i a = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(r0));
    if (hx && hy) {
        return avg4x16(
            a,
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(r0 + 1)),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(r1)),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(r1 + 1)));
    }
    if (hx) {
        return _mm_avg_epu8(a, _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r0 + 1)));
    }
    if (hy) {
        return _mm_avg_epu8(a, _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r1)));
    }
    return a;
}

inline __m128i
hpel8(const uint8_t *r0, const uint8_t *r1, int hx, int hy)
{
    const __m128i a = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(r0));
    if (hx && hy) {
        const __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r0 + 1));
        const __m128i c = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r1));
        const __m128i d = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r1 + 1));
        const __m128i s = _mm_add_epi16(
            _mm_add_epi16(_mm_cvtepu8_epi16(a), _mm_cvtepu8_epi16(b)),
            _mm_add_epi16(_mm_cvtepu8_epi16(c),
                          _mm_cvtepu8_epi16(d)));
        const __m128i r = _mm_srli_epi16(
            _mm_add_epi16(s, _mm_set1_epi16(2)), 2);
        return _mm_packus_epi16(r, _mm_setzero_si128());
    }
    if (hx) {
        return _mm_avg_epu8(a, _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r0 + 1)));
    }
    if (hy) {
        return _mm_avg_epu8(a, _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(r1)));
    }
    return a;
}

} // namespace

int
sadRow16(const uint8_t *c, const uint8_t *r)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    const __m128i rv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(r));
    return hsum_sad(_mm_sad_epu8(cv, rv));
}

int
sadRow8(const uint8_t *c, const uint8_t *r)
{
    const __m128i cv = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(c));
    const __m128i rv = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(r));
    return _mm_cvtsi128_si32(_mm_sad_epu8(cv, rv));
}

int
sadRowHpel16(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
             int hx, int hy)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    return hsum_sad(_mm_sad_epu8(cv, hpel16(r0, r1, hx, hy)));
}

int
sadRowHpel8(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
            int hx, int hy)
{
    const __m128i cv = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(c));
    return _mm_cvtsi128_si32(
        _mm_sad_epu8(cv, hpel8(r0, r1, hx, hy)));
}

int
sumRow16(const uint8_t *c)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    return hsum_sad(_mm_sad_epu8(cv, _mm_setzero_si128()));
}

int
absDevRow16(const uint8_t *c, uint8_t mean)
{
    const __m128i cv = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(c));
    const __m128i mv = _mm_set1_epi8(static_cast<char>(mean));
    return hsum_sad(_mm_sad_epu8(cv, mv));
}

void
predictRow(const uint8_t *r0, const uint8_t *r1, int hx, int hy, int n,
           uint8_t *out)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         hpel16(r0 + i, r1 + i, hx, hy));
    }
    for (; i + 8 <= n; i += 8) {
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i),
                         hpel8(r0 + i, r1 + i, hx, hy));
    }
    if (i < n)
        scalar::predictRow(r0 + i, r1 + i, hx, hy, n - i, out + i);
}

void
interpRow(const uint8_t *r0, const uint8_t *r1, int n, uint8_t *h,
          uint8_t *v, uint8_t *hv)
{
    int i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(r0 + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(r0 + i + 1));
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(r1 + i));
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(r1 + i + 1));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(h + i),
                            _mm256_avg_epu8(a, b));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(v + i),
                            _mm256_avg_epu8(a, c));
        // Four-point average, widened per 128-bit half.
        const __m128i alo = _mm256_castsi256_si128(a);
        const __m128i ahi = _mm256_extracti128_si256(a, 1);
        const __m128i blo = _mm256_castsi256_si128(b);
        const __m128i bhi = _mm256_extracti128_si256(b, 1);
        const __m128i clo = _mm256_castsi256_si128(c);
        const __m128i chi = _mm256_extracti128_si256(c, 1);
        const __m128i dlo = _mm256_castsi256_si128(d);
        const __m128i dhi = _mm256_extracti128_si256(d, 1);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(hv + i),
                         avg4x16(alo, blo, clo, dlo));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(hv + i + 16),
                         avg4x16(ahi, bhi, chi, dhi));
    }
    if (i < n)
        scalar::interpRow(r0 + i, r1 + i, n - i, h + i, v + i, hv + i);
}

void
avgRow(const uint8_t *a, const uint8_t *b, int n, uint8_t *out)
{
    int i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_avg_epu8(av, bv));
    }
    if (i < n)
        scalar::avgRow(a + i, b + i, n - i, out + i);
}

void
copyRow(const uint8_t *src, int n, uint8_t *dst)
{
    std::memcpy(dst, src, static_cast<size_t>(n));
}

uint64_t
ssdRow(const uint8_t *a, const uint8_t *b, int n)
{
    __m256i acc = _mm256_setzero_si256(); // 4 x epi64
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i av = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i bv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        const __m256i d = _mm256_sub_epi16(_mm256_cvtepu8_epi16(av),
                                           _mm256_cvtepu8_epi16(bv));
        const __m256i m = _mm256_madd_epi16(d, d); // 8 x epi32
        acc = _mm256_add_epi64(
            acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m)));
        acc = _mm256_add_epi64(
            acc,
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m, 1)));
    }
    uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
    uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    if (i < n)
        total += scalar::ssdRow(a + i, b + i, n - i);
    return total;
}

void
quant(const int16_t *coefs, int16_t *levels, int start,
      const QuantArgs &qa)
{
    if (qa.mpeg) {
        scalar::quantMpeg(coefs, levels, start, qa);
        return;
    }
    int i = start;
    if (i & 7) {
        const int head = std::min((i + 7) & ~7, 64);
        scalar::quantRange(coefs, levels, i, head, qa);
        i = head;
    }
    const __m256i zero = _mm256_setzero_si256();
    const __m256i dead = _mm256_set1_epi32(qa.intra ? 0 : qa.q / 2);
    const __m256 step = _mm256_set1_ps(static_cast<float>(2 * qa.q));
    const __m256i cap = _mm256_set1_epi32(2047);
    for (; i < 64; i += 8) {
        const __m128i cv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(coefs + i));
        const __m256i c32 = _mm256_cvtepi16_epi32(cv);
        const __m256i mag = _mm256_abs_epi32(c32);
        const __m256i num = _mm256_sub_epi32(mag, dead);
        // Exact trunc(num / 2q) via float division (file header).
        const __m256i lvl = _mm256_cvttps_epi32(
            _mm256_div_ps(_mm256_cvtepi32_ps(num), step));
        __m256i l = _mm256_max_epi32(lvl, zero);
        l = _mm256_min_epi32(l, cap);
        l = _mm256_sign_epi32(l, c32);
        const __m128i packed = _mm_packs_epi32(
            _mm256_castsi256_si128(l),
            _mm256_extracti128_si256(l, 1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(levels + i),
                         packed);
    }
}

void
dequant(const int16_t *levels, int16_t *coefs, int start,
        const QuantArgs &qa)
{
    if (qa.mpeg) {
        scalar::dequantMpeg(levels, coefs, start, qa);
        return;
    }
    int i = start;
    if (i & 7) {
        const int head = std::min((i + 7) & ~7, 64);
        scalar::dequantRange(levels, coefs, i, head, qa);
        i = head;
    }
    const __m256i qv = _mm256_set1_epi32(qa.q);
    const __m256i even = _mm256_set1_epi32(qa.q % 2 == 0 ? 1 : 0);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i lcap = _mm256_set1_epi32(2047);
    const __m256i lfloor = _mm256_set1_epi32(-2048);
    for (; i < 64; i += 8) {
        const __m128i lv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(levels + i));
        const __m256i l32 = _mm256_cvtepi16_epi32(lv);
        const __m256i mag = _mm256_abs_epi32(l32);
        // c = q * (2|lvl| + 1) - [q even]
        __m256i c = _mm256_mullo_epi32(
            qv, _mm256_add_epi32(_mm256_slli_epi32(mag, 1), one));
        c = _mm256_sub_epi32(c, even);
        // Zero where lvl == 0, negate where lvl < 0, then clamp.
        c = _mm256_sign_epi32(c, l32);
        c = _mm256_min_epi32(_mm256_max_epi32(c, lfloor), lcap);
        const __m128i packed = _mm_packs_epi32(
            _mm256_castsi256_si128(c),
            _mm256_extracti128_si256(c, 1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(coefs + i),
                         packed);
    }
}

void
fdct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double din[64];
    for (int i = 0; i < 64; ++i)
        din[i] = static_cast<double>(in[i]); // exact conversion
    double tmp[64];
    // Rows: tmp[y*8+u] = sum_x basis[u][x] * in[y*8+x]; lanes over u.
    for (int y = 0; y < 8; ++y) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (int x = 0; x < 8; ++x) {
            const __m256d vx = _mm256_set1_pd(din[y * 8 + x]);
            acc0 = _mm256_add_pd(
                acc0,
                _mm256_mul_pd(vx, _mm256_loadu_pd(&t.basisT[x][0])));
            acc1 = _mm256_add_pd(
                acc1,
                _mm256_mul_pd(vx, _mm256_loadu_pd(&t.basisT[x][4])));
        }
        _mm256_storeu_pd(&tmp[y * 8 + 0], acc0);
        _mm256_storeu_pd(&tmp[y * 8 + 4], acc1);
    }
    // Columns: out[v*8+u] = sum_y basis[v][y] * tmp[y*8+u]; lanes u,
    // scalar clamp/round epilogue for exact half-away-from-zero.
    for (int v = 0; v < 8; ++v) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (int y = 0; y < 8; ++y) {
            const __m256d bv = _mm256_set1_pd(t.basis[v][y]);
            acc0 = _mm256_add_pd(
                acc0, _mm256_mul_pd(bv, _mm256_loadu_pd(&tmp[y * 8])));
            acc1 = _mm256_add_pd(
                acc1,
                _mm256_mul_pd(bv, _mm256_loadu_pd(&tmp[y * 8 + 4])));
        }
        double vals[8];
        _mm256_storeu_pd(&vals[0], acc0);
        _mm256_storeu_pd(&vals[4], acc1);
        for (int u = 0; u < 8; ++u) {
            const double r = std::clamp(vals[u], -32768.0, 32767.0);
            out[v * 8 + u] = static_cast<int16_t>(std::lround(r));
        }
    }
}

void
idct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double din[64];
    for (int i = 0; i < 64; ++i)
        din[i] = static_cast<double>(in[i]);
    double tmp[64];
    // Columns: tmp[y*8+u] = sum_v basis[v][y] * in[v*8+u]; lanes u.
    for (int y = 0; y < 8; ++y) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (int v = 0; v < 8; ++v) {
            const __m256d bv = _mm256_set1_pd(t.basis[v][y]);
            acc0 = _mm256_add_pd(
                acc0, _mm256_mul_pd(bv, _mm256_loadu_pd(&din[v * 8])));
            acc1 = _mm256_add_pd(
                acc1,
                _mm256_mul_pd(bv, _mm256_loadu_pd(&din[v * 8 + 4])));
        }
        _mm256_storeu_pd(&tmp[y * 8 + 0], acc0);
        _mm256_storeu_pd(&tmp[y * 8 + 4], acc1);
    }
    // Rows: out[y*8+x] = sum_u basis[u][x] * tmp[y*8+u]; lanes x.
    for (int y = 0; y < 8; ++y) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (int u = 0; u < 8; ++u) {
            const __m256d tu = _mm256_set1_pd(tmp[y * 8 + u]);
            acc0 = _mm256_add_pd(
                acc0,
                _mm256_mul_pd(tu, _mm256_loadu_pd(&t.basis[u][0])));
            acc1 = _mm256_add_pd(
                acc1,
                _mm256_mul_pd(tu, _mm256_loadu_pd(&t.basis[u][4])));
        }
        double vals[8];
        _mm256_storeu_pd(&vals[0], acc0);
        _mm256_storeu_pd(&vals[4], acc1);
        for (int x = 0; x < 8; ++x) {
            const double r =
                std::clamp(std::round(vals[x]), -2048.0, 2047.0);
            out[y * 8 + x] = static_cast<int16_t>(r);
        }
    }
}

} // namespace avx2

const KernelOps &
avx2Ops()
{
    static const KernelOps ops = {
        "avx2",
        avx2::sadRow16,
        avx2::sadRow8,
        avx2::sadRowHpel16,
        avx2::sadRowHpel8,
        avx2::sumRow16,
        avx2::absDevRow16,
        avx2::fdct,
        avx2::idct,
        avx2::quant,
        avx2::dequant,
        avx2::predictRow,
        avx2::interpRow,
        avx2::avgRow,
        avx2::copyRow,
        avx2::ssdRow,
    };
    return ops;
}

} // namespace m4ps::codec::kernels

#endif // M4PS_KERNELS_HAVE_AVX2
