/**
 * @file
 * NEON kernel backend (AArch64, 128-bit).
 *
 * Bit-identity notes (full argument in docs/KERNELS.md and the SSE4.1
 * backend header):
 *  - vrhaddq_u8 computes (a + b + 1) >> 1 exactly, matching the
 *    half-pel rounding; four-point averages widen through uint16.
 *  - The H.263 quantizer divides by the uniform step 2q with
 *    vdivq_f32 (AArch64 has a true float divide); numerator and
 *    divisor are exact in float and the correctly-rounded quotient
 *    truncates (vcvtq_s32_f32 rounds toward zero) to the same value
 *    as integer division for this domain.  The MPEG-matrix mode
 *    divides by a per-coefficient value and stays on the shared
 *    scalar path in every backend.
 *  - The DCT uses float64x2_t lanes across outputs with separate
 *    vmulq_f64 + vaddq_f64 (never vfmaq_f64) and scalar rounding
 *    epilogues, so each lane reproduces the scalar double stream.
 */

#if defined(M4PS_KERNELS_HAVE_NEON)

#include "codec/kernels/kernels_internal.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <arm_neon.h>

namespace m4ps::codec::kernels
{

namespace neon
{

namespace
{

/** (a + b + c + d + 2) >> 2 over 16 pels, widened through uint16. */
inline uint8x16_t
avg4x16(uint8x16_t a, uint8x16_t b, uint8x16_t c, uint8x16_t d)
{
    uint16x8_t lo = vaddl_u8(vget_low_u8(a), vget_low_u8(b));
    lo = vaddq_u16(lo, vaddl_u8(vget_low_u8(c), vget_low_u8(d)));
    lo = vshrq_n_u16(vaddq_u16(lo, vdupq_n_u16(2)), 2);
    uint16x8_t hi = vaddl_u8(vget_high_u8(a), vget_high_u8(b));
    hi = vaddq_u16(hi, vaddl_u8(vget_high_u8(c), vget_high_u8(d)));
    hi = vshrq_n_u16(vaddq_u16(hi, vdupq_n_u16(2)), 2);
    return vcombine_u8(vmovn_u16(lo), vmovn_u16(hi));
}

inline uint8x8_t
avg4x8(uint8x8_t a, uint8x8_t b, uint8x8_t c, uint8x8_t d)
{
    uint16x8_t s = vaddq_u16(vaddl_u8(a, b), vaddl_u8(c, d));
    s = vshrq_n_u16(vaddq_u16(s, vdupq_n_u16(2)), 2);
    return vmovn_u16(s);
}

/** Half-pel interpolated row of 16 pels at phase (hx, hy). */
inline uint8x16_t
hpel16(const uint8_t *r0, const uint8_t *r1, int hx, int hy)
{
    const uint8x16_t a = vld1q_u8(r0);
    if (hx && hy)
        return avg4x16(a, vld1q_u8(r0 + 1), vld1q_u8(r1),
                       vld1q_u8(r1 + 1));
    if (hx)
        return vrhaddq_u8(a, vld1q_u8(r0 + 1));
    if (hy)
        return vrhaddq_u8(a, vld1q_u8(r1));
    return a;
}

inline uint8x8_t
hpel8(const uint8_t *r0, const uint8_t *r1, int hx, int hy)
{
    const uint8x8_t a = vld1_u8(r0);
    if (hx && hy)
        return avg4x8(a, vld1_u8(r0 + 1), vld1_u8(r1),
                      vld1_u8(r1 + 1));
    if (hx)
        return vrhadd_u8(a, vld1_u8(r0 + 1));
    if (hy)
        return vrhadd_u8(a, vld1_u8(r1));
    return a;
}

} // namespace

int
sadRow16(const uint8_t *c, const uint8_t *r)
{
    return static_cast<int>(
        vaddlvq_u8(vabdq_u8(vld1q_u8(c), vld1q_u8(r))));
}

int
sadRow8(const uint8_t *c, const uint8_t *r)
{
    return static_cast<int>(
        vaddlv_u8(vabd_u8(vld1_u8(c), vld1_u8(r))));
}

int
sadRowHpel16(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
             int hx, int hy)
{
    return static_cast<int>(
        vaddlvq_u8(vabdq_u8(vld1q_u8(c), hpel16(r0, r1, hx, hy))));
}

int
sadRowHpel8(const uint8_t *c, const uint8_t *r0, const uint8_t *r1,
            int hx, int hy)
{
    return static_cast<int>(
        vaddlv_u8(vabd_u8(vld1_u8(c), hpel8(r0, r1, hx, hy))));
}

int
sumRow16(const uint8_t *c)
{
    return static_cast<int>(vaddlvq_u8(vld1q_u8(c)));
}

int
absDevRow16(const uint8_t *c, uint8_t mean)
{
    return static_cast<int>(
        vaddlvq_u8(vabdq_u8(vld1q_u8(c), vdupq_n_u8(mean))));
}

void
predictRow(const uint8_t *r0, const uint8_t *r1, int hx, int hy, int n,
           uint8_t *out)
{
    int i = 0;
    for (; i + 16 <= n; i += 16)
        vst1q_u8(out + i, hpel16(r0 + i, r1 + i, hx, hy));
    for (; i + 8 <= n; i += 8)
        vst1_u8(out + i, hpel8(r0 + i, r1 + i, hx, hy));
    if (i < n)
        scalar::predictRow(r0 + i, r1 + i, hx, hy, n - i, out + i);
}

void
interpRow(const uint8_t *r0, const uint8_t *r1, int n, uint8_t *h,
          uint8_t *v, uint8_t *hv)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t a = vld1q_u8(r0 + i);
        const uint8x16_t b = vld1q_u8(r0 + i + 1);
        const uint8x16_t c = vld1q_u8(r1 + i);
        const uint8x16_t d = vld1q_u8(r1 + i + 1);
        vst1q_u8(h + i, vrhaddq_u8(a, b));
        vst1q_u8(v + i, vrhaddq_u8(a, c));
        vst1q_u8(hv + i, avg4x16(a, b, c, d));
    }
    if (i < n)
        scalar::interpRow(r0 + i, r1 + i, n - i, h + i, v + i, hv + i);
}

void
avgRow(const uint8_t *a, const uint8_t *b, int n, uint8_t *out)
{
    int i = 0;
    for (; i + 16 <= n; i += 16)
        vst1q_u8(out + i, vrhaddq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
    if (i < n)
        scalar::avgRow(a + i, b + i, n - i, out + i);
}

void
copyRow(const uint8_t *src, int n, uint8_t *dst)
{
    std::memcpy(dst, src, static_cast<size_t>(n));
}

uint64_t
ssdRow(const uint8_t *a, const uint8_t *b, int n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const uint16x8_t d = vabdl_u8(vld1_u8(a + i), vld1_u8(b + i));
        const uint32x4_t sqlo =
            vmull_u16(vget_low_u16(d), vget_low_u16(d));
        const uint32x4_t sqhi =
            vmull_u16(vget_high_u16(d), vget_high_u16(d));
        acc = vpadalq_u32(acc, sqlo);
        acc = vpadalq_u32(acc, sqhi);
    }
    uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    if (i < n)
        total += scalar::ssdRow(a + i, b + i, n - i);
    return total;
}

void
quant(const int16_t *coefs, int16_t *levels, int start,
      const QuantArgs &qa)
{
    if (qa.mpeg) {
        scalar::quantMpeg(coefs, levels, start, qa);
        return;
    }
    int i = start;
    if (i & 3) {
        const int head = std::min((i + 3) & ~3, 64);
        scalar::quantRange(coefs, levels, i, head, qa);
        i = head;
    }
    const int32x4_t zero = vdupq_n_s32(0);
    const int32x4_t dead = vdupq_n_s32(qa.intra ? 0 : qa.q / 2);
    const float32x4_t step = vdupq_n_f32(static_cast<float>(2 * qa.q));
    const int32x4_t cap = vdupq_n_s32(2047);
    for (; i < 64; i += 4) {
        const int16x4_t cv = vld1_s16(coefs + i);
        const int32x4_t c32 = vmovl_s16(cv);
        const int32x4_t mag = vabsq_s32(c32);
        const int32x4_t num = vsubq_s32(mag, dead);
        // Exact trunc(num / 2q) via float division (file header).
        const int32x4_t lvl =
            vcvtq_s32_f32(vdivq_f32(vcvtq_f32_s32(num), step));
        int32x4_t l = vminq_s32(vmaxq_s32(lvl, zero), cap);
        // Apply the coefficient sign (l is 0 whenever c is 0).
        const uint32x4_t negm = vcltq_s32(c32, zero);
        l = vbslq_s32(negm, vnegq_s32(l), l);
        vst1_s16(levels + i, vmovn_s32(l));
    }
}

void
dequant(const int16_t *levels, int16_t *coefs, int start,
        const QuantArgs &qa)
{
    if (qa.mpeg) {
        scalar::dequantMpeg(levels, coefs, start, qa);
        return;
    }
    int i = start;
    if (i & 3) {
        const int head = std::min((i + 3) & ~3, 64);
        scalar::dequantRange(levels, coefs, i, head, qa);
        i = head;
    }
    const int32x4_t zero = vdupq_n_s32(0);
    const int32x4_t qv = vdupq_n_s32(qa.q);
    const int32x4_t even = vdupq_n_s32(qa.q % 2 == 0 ? 1 : 0);
    const int32x4_t one = vdupq_n_s32(1);
    const int32x4_t lcap = vdupq_n_s32(2047);
    const int32x4_t lfloor = vdupq_n_s32(-2048);
    for (; i < 64; i += 4) {
        const int16x4_t lv = vld1_s16(levels + i);
        const int32x4_t l32 = vmovl_s16(lv);
        const int32x4_t mag = vabsq_s32(l32);
        // c = q * (2|lvl| + 1) - [q even]
        int32x4_t c =
            vmulq_s32(qv, vaddq_s32(vshlq_n_s32(mag, 1), one));
        c = vsubq_s32(c, even);
        // Zero where lvl == 0, negate where lvl < 0, then clamp.
        c = vbslq_s32(vceqq_s32(l32, zero), zero, c);
        c = vbslq_s32(vcltq_s32(l32, zero), vnegq_s32(c), c);
        c = vminq_s32(vmaxq_s32(c, lfloor), lcap);
        vst1_s16(coefs + i, vmovn_s32(c));
    }
}

void
fdct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double din[64];
    for (int i = 0; i < 64; ++i)
        din[i] = static_cast<double>(in[i]); // exact conversion
    double tmp[64];
    // Rows: tmp[y*8+u] = sum_x basis[u][x] * in[y*8+x]; lanes over u.
    for (int y = 0; y < 8; ++y) {
        float64x2_t acc[4] = {vdupq_n_f64(0), vdupq_n_f64(0),
                              vdupq_n_f64(0), vdupq_n_f64(0)};
        for (int x = 0; x < 8; ++x) {
            const float64x2_t vx = vdupq_n_f64(din[y * 8 + x]);
            for (int k = 0; k < 4; ++k) {
                acc[k] = vaddq_f64(
                    acc[k],
                    vmulq_f64(vx, vld1q_f64(&t.basisT[x][2 * k])));
            }
        }
        for (int k = 0; k < 4; ++k)
            vst1q_f64(&tmp[y * 8 + 2 * k], acc[k]);
    }
    // Columns: out[v*8+u] = sum_y basis[v][y] * tmp[y*8+u]; lanes u.
    for (int v = 0; v < 8; ++v) {
        float64x2_t acc[4] = {vdupq_n_f64(0), vdupq_n_f64(0),
                              vdupq_n_f64(0), vdupq_n_f64(0)};
        for (int y = 0; y < 8; ++y) {
            const float64x2_t bv = vdupq_n_f64(t.basis[v][y]);
            for (int k = 0; k < 4; ++k) {
                acc[k] = vaddq_f64(
                    acc[k],
                    vmulq_f64(bv, vld1q_f64(&tmp[y * 8 + 2 * k])));
            }
        }
        double vals[8];
        for (int k = 0; k < 4; ++k)
            vst1q_f64(&vals[2 * k], acc[k]);
        for (int u = 0; u < 8; ++u) {
            const double r = std::clamp(vals[u], -32768.0, 32767.0);
            out[v * 8 + u] = static_cast<int16_t>(std::lround(r));
        }
    }
}

void
idct(const int16_t *in, int16_t *out)
{
    const DctTables &t = dctTables();
    double din[64];
    for (int i = 0; i < 64; ++i)
        din[i] = static_cast<double>(in[i]);
    double tmp[64];
    // Columns: tmp[y*8+u] = sum_v basis[v][y] * in[v*8+u]; lanes u.
    for (int y = 0; y < 8; ++y) {
        float64x2_t acc[4] = {vdupq_n_f64(0), vdupq_n_f64(0),
                              vdupq_n_f64(0), vdupq_n_f64(0)};
        for (int v = 0; v < 8; ++v) {
            const float64x2_t bv = vdupq_n_f64(t.basis[v][y]);
            for (int k = 0; k < 4; ++k) {
                acc[k] = vaddq_f64(
                    acc[k],
                    vmulq_f64(bv, vld1q_f64(&din[v * 8 + 2 * k])));
            }
        }
        for (int k = 0; k < 4; ++k)
            vst1q_f64(&tmp[y * 8 + 2 * k], acc[k]);
    }
    // Rows: out[y*8+x] = sum_u basis[u][x] * tmp[y*8+u]; lanes x.
    for (int y = 0; y < 8; ++y) {
        float64x2_t acc[4] = {vdupq_n_f64(0), vdupq_n_f64(0),
                              vdupq_n_f64(0), vdupq_n_f64(0)};
        for (int u = 0; u < 8; ++u) {
            const float64x2_t tu = vdupq_n_f64(tmp[y * 8 + u]);
            for (int k = 0; k < 4; ++k) {
                acc[k] = vaddq_f64(
                    acc[k],
                    vmulq_f64(tu, vld1q_f64(&t.basis[u][2 * k])));
            }
        }
        double vals[8];
        for (int k = 0; k < 4; ++k)
            vst1q_f64(&vals[2 * k], acc[k]);
        for (int x = 0; x < 8; ++x) {
            const double r =
                std::clamp(std::round(vals[x]), -2048.0, 2047.0);
            out[y * 8 + x] = static_cast<int16_t>(r);
        }
    }
}

} // namespace neon

const KernelOps &
neonOps()
{
    static const KernelOps ops = {
        "neon",
        neon::sadRow16,
        neon::sadRow8,
        neon::sadRowHpel16,
        neon::sadRowHpel8,
        neon::sumRow16,
        neon::absDevRow16,
        neon::fdct,
        neon::idct,
        neon::quant,
        neon::dequant,
        neon::predictRow,
        neon::interpRow,
        neon::avgRow,
        neon::copyRow,
        neon::ssdRow,
    };
    return ops;
}

} // namespace m4ps::codec::kernels

#endif // M4PS_KERNELS_HAVE_NEON
