/**
 * @file
 * Deterministic fault injection for elementary streams.
 *
 * The paper's target scenario is streaming delivery, where the
 * channel - not the codec - decides which bits arrive.  This module
 * models that channel: seeded random bit flips at a configurable
 * bit-error rate, contiguous burst errors, truncation, and startcode
 * emulation.  Everything is a pure function of (stream, spec), so a
 * BER sweep is reproducible from its seeds.
 */

#ifndef M4PS_CODEC_FAULTINJECT_HH
#define M4PS_CODEC_FAULTINJECT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace m4ps::codec
{

/** What to do to a stream.  Defaults leave it untouched. */
struct FaultSpec
{
    /** Independent bit-flip probability per transmitted bit. */
    double ber = 0.0;

    /** Number of contiguous burst errors (randomized byte runs). */
    int bursts = 0;

    /** Length of each burst in bytes. */
    int burstBytes = 16;

    /** Keep this fraction of the stream; 1.0 = no truncation. */
    double truncateFraction = 1.0;

    /** Forged 0x000001 prefixes written at random offsets. */
    int startcodeEmulations = 0;

    /** Seed for all randomized placement. */
    uint64_t seed = 1;

    /**
     * Bytes at the start of the stream that the channel never
     * touches.  A transport protects its session headers (FEC,
     * retransmission); set this to protectableHeaderBytes() to model
     * that while exposing every VOP to loss.
     */
    size_t protectPrefixBytes = 0;
};

/** Flip each unprotected bit independently with probability @p ber. */
std::vector<uint8_t> flipBits(std::vector<uint8_t> stream, double ber,
                              uint64_t seed, size_t protect_prefix = 0);

/** Overwrite @p bursts random runs of @p burst_bytes with noise. */
std::vector<uint8_t> burstErrors(std::vector<uint8_t> stream, int bursts,
                                 int burst_bytes, uint64_t seed,
                                 size_t protect_prefix = 0);

/** Keep the first @p fraction of the stream (at least the prefix). */
std::vector<uint8_t> truncateStream(std::vector<uint8_t> stream,
                                    double fraction,
                                    size_t protect_prefix = 0);

/** Write @p count forged 0x000001 prefixes at random offsets. */
std::vector<uint8_t> emulateStartcodes(std::vector<uint8_t> stream,
                                       int count, uint64_t seed,
                                       size_t protect_prefix = 0);

/**
 * Apply every fault class of @p spec in a fixed order: flips, bursts,
 * startcode emulation, and truncation *last*.  The order is part of
 * the contract: truncation running last means truncateFraction is a
 * fraction of the original stream length (not of some intermediate),
 * every in-place fault class sees the full stream extent, and
 * protectPrefixBytes is honored by each class individually - the
 * returned stream always begins with the protected prefix unchanged
 * (clamped to the original size).  fec::channelHard mirrors the same
 * order over framed streams.
 */
std::vector<uint8_t> injectFaults(std::vector<uint8_t> stream,
                                  const FaultSpec &spec);

/**
 * Byte offset of the first VOP section: the sequence/VO/VOL header
 * prefix a modelled transport would protect.  Returns the stream
 * size if no VOP is found.
 */
size_t protectableHeaderBytes(const std::vector<uint8_t> &stream);

} // namespace m4ps::codec

#endif // M4PS_CODEC_FAULTINJECT_HH
