#include "codec/streamtools.hh"

#include "bitstream/bitstream.hh"
#include "bitstream/expgolomb.hh"
#include "bitstream/startcode.hh"
#include "codec/vop.hh"
#include "support/logging.hh"

namespace m4ps::codec
{

namespace
{

/**
 * Parse and sanity-check a candidate VOP header at @p payload.
 * Our entropy coding does not guarantee startcode-emulation
 * freedom, so a blind byte scan can hit a false 0x000001 inside a
 * payload; requiring a plausible header (~40 constrained bits)
 * makes a false accept vanishingly unlikely.
 */
bool
plausibleVopHeader(const uint8_t *payload, size_t size, int &vo_id,
                   int &vol_id)
{
    bits::BitReader br(payload, size);
    const uint32_t type = br.getBits(2);
    vo_id = static_cast<int>(bits::getUe(br));
    vol_id = static_cast<int>(bits::getUe(br));
    const uint32_t ts = bits::getUe(br);
    const uint32_t qp = br.getBits(5);
    const uint32_t wx = bits::getUe(br);
    const uint32_t wy = bits::getUe(br);
    const uint32_t ww = bits::getUe(br);
    const uint32_t wh = bits::getUe(br);
    return !br.overrun() && type <= 2 && vo_id < 32 && vol_id < 16 &&
           ts < (1u << 20) && qp >= 1 && qp <= 31 && wx < 1024 &&
           wy < 1024 && ww >= 1 && ww < 1024 && wh >= 1 && wh < 1024;
}

} // namespace

std::vector<StreamSection>
parseSections(const std::vector<uint8_t> &stream)
{
    std::vector<StreamSection> sections;
    bool seen_vop = false;
    // Byte-scan for the 0x000001 prefix (all sections are aligned),
    // validating each candidate in context.
    size_t i = 0;
    while (i + 3 < stream.size()) {
        if (!(stream[i] == 0 && stream[i + 1] == 0 &&
              stream[i + 2] == 1)) {
            ++i;
            continue;
        }
        StreamSection s;
        s.code = stream[i + 3];
        s.offset = i;

        bool accept = false;
        if (bits::isVopCode(s.code)) {
            // Resilient VOPs (0xb7) append a data-partitioning flag,
            // but the prefix fields checked here are identical.
            accept = plausibleVopHeader(stream.data() + i + 4,
                                        stream.size() - i - 4,
                                        s.voId, s.volId);
            seen_vop = seen_vop || accept;
        } else if (s.code ==
                       static_cast<uint8_t>(
                           bits::StartCode::VisualObjectSequenceEnd)) {
            accept = true;
        } else if (bits::isVoCode(s.code) || bits::isVolCode(s.code) ||
                   s.code == static_cast<uint8_t>(
                                 bits::StartCode::
                                     VisualObjectSequence)) {
            // Header sections only appear before the first VOP.
            accept = !seen_vop;
        }
        if (!accept) {
            ++i;
            continue;
        }
        if (!sections.empty())
            sections.back().size = s.offset - sections.back().offset;
        sections.push_back(s);
        i += 4;
    }
    if (!sections.empty())
        sections.back().size = stream.size() - sections.back().offset;
    return sections;
}

namespace
{

/**
 * Rebuild a stream keeping VOL/VOP sections accepted by the
 * predicates; the VOS and VO headers are re-emitted with adjusted
 * counts.
 */
template <typename KeepVo, typename KeepVol>
std::vector<uint8_t>
filterStream(const std::vector<uint8_t> &stream, int new_num_vos,
             int new_layers, KeepVo keep_vo, KeepVol keep_vol)
{
    const auto sections = parseSections(stream);
    M4PS_ASSERT(!sections.empty() &&
                sections.front().code ==
                    static_cast<uint8_t>(
                        bits::StartCode::VisualObjectSequence),
                "not an m4ps elementary stream");

    bits::BitWriter out;
    bits::putStartCode(out, static_cast<uint8_t>(
        bits::StartCode::VisualObjectSequence));
    bits::putUe(out, static_cast<uint32_t>(new_num_vos));

    int current_vo = -1;
    for (const StreamSection &s : sections) {
        if (s.code == static_cast<uint8_t>(
                          bits::StartCode::VisualObjectSequence) ||
            s.code == static_cast<uint8_t>(
                          bits::StartCode::VisualObjectSequenceEnd)) {
            continue; // re-emitted explicitly
        }
        if (bits::isVoCode(s.code)) {
            current_vo = s.code;
            if (!keep_vo(current_vo))
                continue;
            bits::putVoStartCode(out, current_vo);
            bits::putUe(out, static_cast<uint32_t>(new_layers));
            continue;
        }
        if (bits::isVolCode(s.code)) {
            const int vol_id =
                s.code - static_cast<uint8_t>(
                             bits::StartCode::VideoObjectLayer);
            if (!keep_vo(current_vo) || !keep_vol(vol_id))
                continue;
        } else if (bits::isVopCode(s.code)) {
            if (!keep_vo(s.voId) || !keep_vol(s.volId))
                continue;
        }
        // Copy the section bytes verbatim (it is self-contained).
        out.byteAlign();
        for (size_t i = 0; i < s.size; ++i)
            out.putBits(stream[s.offset + i], 8);
    }

    bits::putStartCode(out, static_cast<uint8_t>(
        bits::StartCode::VisualObjectSequenceEnd));
    return out.take();
}

/** Count VOs / layers from the original header sections. */
void
streamCounts(const std::vector<uint8_t> &stream, int &num_vos,
             int &layers)
{
    bits::BitReader br(stream);
    auto code = bits::nextStartCode(br);
    M4PS_ASSERT(code && *code == static_cast<uint8_t>(
                            bits::StartCode::VisualObjectSequence),
                "not an m4ps elementary stream");
    num_vos = static_cast<int>(bits::getUe(br));
    code = bits::nextStartCode(br);
    M4PS_ASSERT(code && bits::isVoCode(*code), "missing VO header");
    layers = static_cast<int>(bits::getUe(br));
}

} // namespace

std::vector<uint8_t>
extractLayers(const std::vector<uint8_t> &stream, int max_vol_id)
{
    int num_vos = 0, layers = 0;
    streamCounts(stream, num_vos, layers);
    const int new_layers = std::min(layers, max_vol_id + 1);
    M4PS_ASSERT(new_layers >= 1, "cannot drop every layer");
    return filterStream(
        stream, num_vos, new_layers, [](int) { return true; },
        [&](int vol) { return vol <= max_vol_id; });
}

std::vector<uint8_t>
extractVoPrefix(const std::vector<uint8_t> &stream, int num_vos)
{
    int orig_vos = 0, layers = 0;
    streamCounts(stream, orig_vos, layers);
    M4PS_ASSERT(num_vos >= 1 && num_vos <= orig_vos,
                "VO prefix out of range: ", num_vos, " of ", orig_vos);
    return filterStream(
        stream, num_vos, layers,
        [&](int vo) { return vo >= 0 && vo < num_vos; },
        [](int) { return true; });
}

} // namespace m4ps::codec
