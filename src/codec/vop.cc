#include "codec/vop.hh"

#include <algorithm>
#include <bit>
#include <optional>

#include "bitstream/expgolomb.hh"
#include "codec/error.hh"
#include "codec/kernels/kernels.hh"
#include "bitstream/startcode.hh"
#include "codec/zigzag.hh"
#include "support/logging.hh"
#include "support/obs/obs.hh"
#include "support/threadpool.hh"

namespace m4ps::codec
{

namespace
{

constexpr int kMb = 16;

/** Compute cycles per 8x8 transform beyond its traced loads/stores. */
constexpr double kDctCycles = 300.0;

/** Compute cycles per quantization / scan pass. */
constexpr double kPassCycles = 64.0;

/** Entropy-coding compute cycles per bitstream bit. */
constexpr double kEncodeCyclesPerBit = 3.0;
constexpr double kDecodeCyclesPerBit = 4.0;

/** Intra/inter decision bias (MoMuSys-style). */
constexpr int kIntraBias = 512;

/** Round-half-away-from-zero average of four vector components. */
int
avg4(int sum)
{
    const int mag = (std::abs(sum) + 2) >> 2;
    return sum < 0 ? -mag : mag;
}

int
vopTypeBits(VopType t)
{
    switch (t) {
      case VopType::I: return 0;
      case VopType::P: return 1;
      case VopType::B: return 2;
    }
    M4PS_PANIC("bad vop type");
}

VopType
vopTypeFromBits(uint32_t v)
{
    switch (v) {
      case 0: return VopType::I;
      case 1: return VopType::P;
      case 2: return VopType::B;
      default: return VopType::I; // corrupt stream; caller validates
    }
}

/**
 * Scoped thread-local shard binding: while alive, every memsim
 * access made on this thread is recorded instead of simulated, to be
 * replayed in row order by MemoryHierarchy::merge().  A null shard
 * is a no-op (sequential runs simulate directly).
 */
class ShardBinding
{
  public:
    explicit ShardBinding(memsim::TraceShard *shard) : shard_(shard)
    {
        if (shard_)
            memsim::MemoryHierarchy::bindShard(shard_);
    }

    ~ShardBinding()
    {
        if (shard_)
            memsim::MemoryHierarchy::bindShard(nullptr);
    }

    ShardBinding(const ShardBinding &) = delete;
    ShardBinding &operator=(const ShardBinding &) = delete;

  private:
    memsim::TraceShard *shard_;
};

} // namespace

void
VolConfig::validate() const
{
    M4PS_ASSERT(width > 0 && height > 0, "VOL needs positive size");
    M4PS_ASSERT(width % kMb == 0 && height % kMb == 0,
                "VOL dimensions must be multiples of 16, got ",
                width, "x", height);
    M4PS_ASSERT(searchRange >= 0 && searchRangeB >= 0,
                "negative search range");
    M4PS_ASSERT(voId >= 0 && voId < 32 && volId >= 0 && volId < 16,
                "vo/vol id out of range");
    M4PS_ASSERT(resyncInterval >= 0, "negative resync interval");
    M4PS_ASSERT(!dataPartitioning || resyncInterval > 0,
                "data partitioning requires video packets "
                "(resyncInterval > 0)");
}

void
writeVopHeader(bits::BitWriter &bw, const VopHeader &hdr)
{
    bits::putStartCode(
        bw, static_cast<uint8_t>(hdr.packetized
                                     ? bits::StartCode::VopResilient
                                     : bits::StartCode::Vop));
    bw.putBits(static_cast<uint32_t>(vopTypeBits(hdr.type)), 2);
    bits::putUe(bw, static_cast<uint32_t>(hdr.voId));
    bits::putUe(bw, static_cast<uint32_t>(hdr.volId));
    bits::putUe(bw, static_cast<uint32_t>(hdr.timestamp));
    bw.putBits(static_cast<uint32_t>(hdr.qp), 5);
    bits::putUe(bw, static_cast<uint32_t>(hdr.mbWindow.x));
    bits::putUe(bw, static_cast<uint32_t>(hdr.mbWindow.y));
    bits::putUe(bw, static_cast<uint32_t>(hdr.mbWindow.w));
    bits::putUe(bw, static_cast<uint32_t>(hdr.mbWindow.h));
    if (hdr.packetized)
        bw.putBit(hdr.dataPartitioned);
}

namespace
{

/**
 * Bound for raw header ue fields.  Large enough for any stream our
 * encoder can write (timestamps, macroblock coordinates), small
 * enough that downstream int arithmetic (window sums, row tables)
 * cannot overflow.
 */
constexpr uint32_t kMaxHeaderField = 1u << 20;

int
boundedUe(bits::BitReader &br, const char *what)
{
    const uint32_t v = bits::getUe(br);
    if (v > kMaxHeaderField)
        throw StreamError(std::string("implausible VOP header field (") +
                          what + ")");
    return static_cast<int>(v);
}

} // namespace

VopHeader
readVopHeader(bits::BitReader &br, bool packetized)
{
    VopHeader hdr;
    hdr.packetized = packetized;
    hdr.type = vopTypeFromBits(br.getBits(2));
    hdr.voId = boundedUe(br, "voId");
    hdr.volId = boundedUe(br, "volId");
    hdr.timestamp = boundedUe(br, "timestamp");
    hdr.qp = static_cast<int>(br.getBits(5));
    hdr.mbWindow.x = boundedUe(br, "window x");
    hdr.mbWindow.y = boundedUe(br, "window y");
    hdr.mbWindow.w = boundedUe(br, "window w");
    hdr.mbWindow.h = boundedUe(br, "window h");
    if (packetized)
        hdr.dataPartitioned = br.getBit();
    if (br.overrun())
        throw StreamError("truncated VOP header");
    if (hdr.qp < 1)
        throw StreamError("VOP quantizer out of range");
    return hdr;
}

// ---------------------------------------------------------------------
// Row-local predictors
// ---------------------------------------------------------------------

RowPredictors::RowPredictors(int mb_width, int mb_row)
    : mbWidth_(mb_width), mbRow_(mb_row)
{
    dc_[0].resize(static_cast<size_t>(4) * mb_width);
    dcValid_[0].resize(dc_[0].size());
    for (int p = 1; p < 3; ++p) {
        dc_[p].resize(mb_width);
        dcValid_[p].resize(mb_width);
    }
}

void
RowPredictors::beginMb()
{
    for (int d = 0; d < 2; ++d) {
        left_[d] = pending_[d];
        leftValid_[d] = pendingValid_[d];
        pendingValid_[d] = false;
    }
}

MotionVector
RowPredictors::predictMv(int dir) const
{
    return leftValid_[dir] ? left_[dir] : MotionVector{0, 0};
}

void
RowPredictors::setMv(int dir, MotionVector mv)
{
    pending_[dir] = mv;
    pendingValid_[dir] = true;
}

int
RowPredictors::predictDc(int plane, int bx, int by) const
{
    if (plane == 0) {
        const int w = 2 * mbWidth_;
        const int rel = by - 2 * mbRow_;
        // Left first, then above, as in the sequential H.263 scheme;
        // "above" exists only for the lower block row of the MB row.
        if (bx > 0 && dcValid_[0][static_cast<size_t>(rel) * w + bx - 1])
            return dc_[0][static_cast<size_t>(rel) * w + bx - 1];
        if (rel == 1 && dcValid_[0][bx])
            return dc_[0][bx];
        return 0;
    }
    (void)by; // chroma has one block row per MB row: left only.
    if (bx > 0 && dcValid_[plane][bx - 1])
        return dc_[plane][bx - 1];
    return 0;
}

void
RowPredictors::setDc(int plane, int bx, int by, int level)
{
    size_t i;
    if (plane == 0) {
        const int rel = by - 2 * mbRow_;
        i = static_cast<size_t>(rel) * 2 * mbWidth_ + bx;
    } else {
        i = static_cast<size_t>(bx);
    }
    dc_[plane][i] = static_cast<int16_t>(level);
    dcValid_[plane][i] = 1;
}

// ---------------------------------------------------------------------
// Shared base
// ---------------------------------------------------------------------

VopCodecBase::VopCodecBase(memsim::SimContext &ctx, const VolConfig &cfg)
    : cfg_(cfg), mem_(ctx.mem()),
      blockScratch_(ctx, kBlockSize * kNumRegions),
      predFwd_(ctx, 384), predBwd_(ctx, 384), predBi_(ctx, 384)
{
    cfg_.validate();
}

void
VopCodecBase::traceBlockLoad(ScratchRegion r, int n) const
{
    const_cast<memsim::SimBuffer<int16_t> &>(blockScratch_)
        .traceLoadRow(static_cast<size_t>(r) * kBlockSize, n);
}

void
VopCodecBase::traceBlockStore(ScratchRegion r, int n)
{
    blockScratch_.traceStoreRow(static_cast<size_t>(r) * kBlockSize, n);
}

void
VopCodecBase::tick(double cycles) const
{
    if (mem_)
        mem_->tick(cycles);
}

void
VopCodecBase::resetVopState(const VopHeader &hdr)
{
    window_ = hdr.mbWindow;
    M4PS_ASSERT(window_.x >= 0 && window_.y >= 0 && window_.w > 0 &&
                window_.h > 0 &&
                window_.x + window_.w <= cfg_.mbWidth() &&
                window_.y + window_.h <= cfg_.mbHeight(),
                "VOP window outside VOL: (", window_.x, ",", window_.y,
                ",", window_.w, ",", window_.h, ")");
    shape_.reset();
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

VopEncoder::VopEncoder(memsim::SimContext &ctx, const VolConfig &cfg)
    : VopCodecBase(ctx, cfg)
{
}

VopEncoder::BlockCode
VopEncoder::analyzeBlock(RowPredictors &rp, const video::Plane &cur,
                         int x0, int y0, const uint8_t *pred,
                         int pred_stride, bool intra, bool luma, int qp,
                         int plane_idx, int bx, int by)
{
    BlockCode code;
    Block src;
    // Fetch input samples (traced) and form residual / shifted intra.
    for (int row = 0; row < kBlockEdge; ++row) {
        cur.traceLoadRow(x0, y0 + row, kBlockEdge);
        const uint8_t *c = cur.rowPtr(y0 + row) + x0;
        for (int i = 0; i < kBlockEdge; ++i) {
            int v;
            if (intra)
                v = c[i] - 128;
            else
                v = c[i] - pred[row * pred_stride + i];
            src[row * kBlockEdge + i] = static_cast<int16_t>(v);
        }
    }
    traceBlockStore(kSrc);

    Block coef;
    traceBlockLoad(kSrc);
    forwardDct(src, coef);
    traceBlockStore(kCoef);
    tick(kDctCycles);

    QuantParams qparams{qp, intra, cfg_.mpegQuant, luma};
    Block levels;
    traceBlockLoad(kCoef);
    quantize(coef, levels, qparams);
    traceBlockStore(kLevels);
    tick(kPassCycles);

    code.levels = levels;
    Block scanned;
    traceBlockLoad(kLevels);
    scan(levels, scanned);
    traceBlockStore(kScanned);
    tick(kPassCycles);

    if (intra) {
        const int pred_dc = rp.predictDc(plane_idx, bx, by);
        code.dcDelta = levels[0] - pred_dc;
        rp.setDc(plane_idx, bx, by, levels[0]);
        code.events = runLengthEncode(scanned, 1);
    } else {
        code.events = runLengthEncode(scanned, 0);
    }
    traceBlockLoad(kScanned);
    code.coded = !code.events.empty();
    return code;
}

void
VopEncoder::reconBlock(const BlockCode &code, const uint8_t *pred,
                       int pred_stride, bool intra, bool luma, int qp,
                       video::Plane *recon, int x0, int y0)
{
    if (!recon)
        return;
    QuantParams qparams{qp, intra, cfg_.mpegQuant, luma};
    Block dequant;
    Block idct;
    const bool any = code.coded || (intra && code.levels[0] != 0);
    if (any) {
        traceBlockLoad(kLevels);
        dequantize(code.levels, dequant, qparams);
        traceBlockStore(kDequant);
        tick(kPassCycles);
        traceBlockLoad(kDequant);
        inverseDct(dequant, idct);
        traceBlockStore(kIdct);
        tick(kDctCycles);
    } else {
        idct.fill(0);
    }
    traceBlockLoad(kIdct);
    for (int row = 0; row < kBlockEdge; ++row) {
        uint8_t *r = recon->rowPtr(y0 + row) + x0;
        for (int i = 0; i < kBlockEdge; ++i) {
            const int base =
                intra ? 128 : pred[row * pred_stride + i];
            r[i] = static_cast<uint8_t>(
                std::clamp(base + idct[row * kBlockEdge + i], 0, 255));
        }
        recon->traceStoreRow(x0, y0 + row, kBlockEdge);
    }
}

void
VopEncoder::encodeShapePass(bits::BitWriter &bw, const VopHeader &hdr,
                            const video::Plane &alpha,
                            std::vector<BabMode> &modes)
{
    const video::Rect &win = hdr.mbWindow;
    modes.clear();
    modes.reserve(static_cast<size_t>(win.w) * win.h);
    // Pass 1: classify and signal BAB modes.
    for (int my = win.y; my < win.y + win.h; ++my) {
        for (int mx = win.x; mx < win.x + win.w; ++mx) {
            const BabMode mode =
                ShapeCoder::analyzeBab(alpha, mx * kMb, my * kMb);
            modes.push_back(mode);
            bits::putUe(bw, static_cast<uint32_t>(mode));
        }
    }
    // Pass 2: context-code boundary BABs into one arithmetic payload.
    ArithEncoder enc;
    size_t i = 0;
    for (int my = win.y; my < win.y + win.h; ++my) {
        for (int mx = win.x; mx < win.x + win.w; ++mx, ++i) {
            if (modes[i] == BabMode::Coded)
                shape_.encodeBab(enc, alpha, mx * kMb, my * kMb);
        }
    }
    const std::vector<uint8_t> payload = enc.finish();
    bits::putUe(bw, static_cast<uint32_t>(payload.size()));
    bw.byteAlign();
    for (uint8_t byte : payload)
        bw.putBits(byte, 8);
}

VopStats
VopEncoder::encodeTextureRow(bits::BitWriter &bw, bits::BitWriter *tex,
                             const VopHeader &hdr,
                             int my, const video::Yuv420Image &cur,
                             const std::vector<BabMode> &modes,
                             const RefFrames &refs,
                             video::Yuv420Image *recon)
{
    // Data partitioning: texture bits (coded flags, cbp, coefficient
    // events) land in *tex while motion/mode/DC bits stay in bw.
    // Without it both aliases write the same stream, preserving the
    // exact legacy interleaving bit for bit.
    bits::BitWriter &txw = tex ? *tex : bw;
    const video::Rect &win = hdr.mbWindow;
    const int qp = hdr.qp;
    const bool is_b = hdr.type == VopType::B;
    const bool fwd_ok = refs.past != nullptr;
    const bool bwd_ok = is_b && refs.future != nullptr;

    VopStats stats;
    RowPredictors rp(cfg_.mbWidth(), my);
    // Row-private prediction pixels.  The shared SimBuffers remain
    // the canonical simulated addresses for tracing; their stored
    // bytes are never touched here, so concurrent rows do not race.
    uint8_t fwdData[384];
    uint8_t bwdData[384];
    uint8_t biData[384];

    obs::Span rowSpan("codec", "enc.row");
    if (rowSpan.active())
        rowSpan.setArgs("{\"row\":" + std::to_string(my) + "}");
    obs::StageTimes st;
    obs::beginStages(st);

    size_t mode_idx = static_cast<size_t>(my - win.y) * win.w;
    for (int mx = win.x; mx < win.x + win.w; ++mx, ++mode_idx) {
        rp.beginMb();
        const int px = mx * kMb;
        const int py = my * kMb;
        const BabMode bab = cfg_.hasShape ? modes[mode_idx]
                                          : BabMode::Opaque;
        if (bab == BabMode::Transparent) {
            ++stats.transparentMbs;
            if (recon) {
                for (int p = 0; p < 3; ++p) {
                    video::Plane &pl = recon->plane(p);
                    const int sh = p == 0 ? 0 : 1;
                    for (int row = 0; row < kMb >> sh; ++row) {
                        uint8_t *r = pl.rowPtr((py >> sh) + row)
                                     + (px >> sh);
                        std::fill(r, r + (kMb >> sh), 128);
                        pl.traceStoreRow(px >> sh, (py >> sh) + row,
                                         kMb >> sh);
                    }
                }
            }
            continue;
        }

        // ---------------- mode decision -------------------------
        bool intra = hdr.type == VopType::I;
        SearchResult fwd{}, bwd{};
        int mode = 0; // B: 0=fwd, 1=bwd, 2=bi
        bool use_4mv = false;
        MotionVector mv4[4]{};
        {
        obs::StageScope motionScope(st, obs::Stage::Motion);
        if (hdr.type == VopType::P) {
            fwd = motionSearch(cur.y(), refs.past->y(), px, py,
                               cfg_.searchRange, cfg_.halfPel);
            int mean, dev;
            blockActivity16(cur.y(), px, py, mean, dev);
            intra = dev < fwd.sad - kIntraBias;
            if (!intra && cfg_.fourMv) {
                // INTER4V: refine one vector per 8x8 block in a
                // small window around the 16x16 optimum.
                int sad4 = 0;
                for (int b = 0; b < 4; ++b) {
                    const SearchResult r8 = motionSearch8(
                        cur.y(), refs.past->y(), px + (b & 1) * 8,
                        py + (b >> 1) * 8, fwd.mv, 2,
                        cfg_.halfPel);
                    mv4[b] = r8.mv;
                    sad4 += r8.sad;
                }
                // MoMuSys-style bias against the 4MV overhead.
                use_4mv = sad4 + 200 < fwd.sad;
            }
        } else if (is_b) {
            int best = INT32_MAX;
            if (fwd_ok) {
                fwd = motionSearch(cur.y(), refs.past->y(), px, py,
                                   cfg_.searchRangeB, cfg_.halfPel);
                best = fwd.sad;
                mode = 0;
            }
            if (bwd_ok) {
                if (cfg_.enhancement) {
                    // Spatial reference: co-located, zero vector.
                    bwd.mv = {0, 0};
                    bwd.sad = sad16(cur.y(), px, py,
                                    refs.future->y(), px, py,
                                    INT32_MAX);
                } else {
                    bwd = motionSearch(cur.y(), refs.future->y(),
                                       px, py, cfg_.searchRangeB,
                                       cfg_.halfPel);
                }
                if (!fwd_ok || bwd.sad < best) {
                    best = bwd.sad;
                    mode = 1;
                }
            }
        }
        } // motion stage

        // ---------------- prediction build ----------------------
        const uint8_t *pred = nullptr; // 384-byte Y+U+V layout
        if (!intra && hdr.type != VopType::I) {
            obs::StageScope reconScope(st, obs::Stage::Recon);
            auto build = [&](const video::Yuv420Image &ref,
                             MotionVector mv, uint8_t *dst,
                             memsim::SimBuffer<uint8_t> &trace) {
                predictLuma16(ref.y(), px, py, mv, dst);
                trace.traceStoreRow(0, 256);
                predictChroma8(ref.u(), px / 2, py / 2, mv,
                               dst + 256);
                predictChroma8(ref.v(), px / 2, py / 2, mv,
                               dst + 320);
                trace.traceStoreRow(256, 128);
            };
            if (is_b) {
                if (fwd_ok)
                    build(*refs.past, fwd.mv, fwdData, predFwd_);
                if (bwd_ok)
                    build(*refs.future, bwd.mv, bwdData, predBwd_);
                if (fwd_ok && bwd_ok) {
                    predFwd_.traceLoadRow(0, 384);
                    predBwd_.traceLoadRow(0, 384);
                    averagePrediction(fwdData, bwdData, 384, biData);
                    predBi_.traceStoreRow(0, 384);
                    // Interpolated-mode SAD over luma.
                    int sad_bi = 0;
                    for (int row = 0; row < kMb; ++row) {
                        cur.y().traceLoadRow(px, py + row, kMb);
                        const uint8_t *c =
                            cur.y().rowPtr(py + row) + px;
                        const uint8_t *pb = biData + row * kMb;
                        for (int i = 0; i < kMb; ++i) {
                            sad_bi += std::abs(
                                static_cast<int>(c[i]) - pb[i]);
                        }
                    }
                    predBi_.traceLoadRow(0, 256);
                    const int prev_best =
                        mode == 0 ? fwd.sad : bwd.sad;
                    if (sad_bi < prev_best)
                        mode = 2;
                }
                pred = mode == 0 ? fwdData
                       : mode == 1 ? bwdData : biData;
            } else if (use_4mv) {
                // Per-block luma prediction; chroma from the
                // averaged vector.
                uint8_t tmp[64];
                for (int b = 0; b < 4; ++b) {
                    predictLuma8(refs.past->y(), px + (b & 1) * 8,
                                 py + (b >> 1) * 8, mv4[b], tmp);
                    uint8_t *dst = fwdData +
                                   (b >> 1) * 8 * 16 + (b & 1) * 8;
                    for (int row = 0; row < 8; ++row) {
                        std::copy(tmp + row * 8, tmp + row * 8 + 8,
                                  dst + row * 16);
                    }
                }
                predFwd_.traceStoreRow(0, 256);
                const MotionVector cavg{
                    avg4(mv4[0].x + mv4[1].x + mv4[2].x + mv4[3].x),
                    avg4(mv4[0].y + mv4[1].y + mv4[2].y +
                         mv4[3].y)};
                predictChroma8(refs.past->u(), px / 2, py / 2,
                               cavg, fwdData + 256);
                predictChroma8(refs.past->v(), px / 2, py / 2,
                               cavg, fwdData + 320);
                predFwd_.traceStoreRow(256, 128);
                pred = fwdData;
            } else {
                build(*refs.past, fwd.mv, fwdData, predFwd_);
                pred = fwdData;
            }
        }

        // ---------------- block analysis ------------------------
        BlockCode blocks[6];
        int cbp = 0;
        const memsim::SimBuffer<uint8_t> *pred_buf =
            is_b ? (mode == 0 ? &predFwd_
                    : mode == 1 ? &predBwd_ : &predBi_)
                 : &predFwd_;
        {
        obs::StageScope dctScope(st, obs::Stage::DctQuant);
        for (int b = 0; b < 6; ++b) {
            const bool luma = b < 4;
            const video::Plane &pl = cur.plane(luma ? 0 : b - 3);
            const int bx = b & 1;
            const int by = (b >> 1) & 1;
            int x0, y0, gx, gy, plane_idx;
            const uint8_t *p = nullptr;
            int pstride = 0;
            if (luma) {
                x0 = px + bx * 8;
                y0 = py + by * 8;
                gx = 2 * mx + bx;
                gy = 2 * my + by;
                plane_idx = 0;
                if (pred) {
                    p = pred + by * 8 * kMb + bx * 8;
                    pstride = kMb;
                    const_cast<memsim::SimBuffer<uint8_t> *>(pred_buf)
                        ->traceLoadRow(
                            static_cast<size_t>(by) * 128 + bx * 8, 64);
                }
            } else {
                x0 = px / 2;
                y0 = py / 2;
                gx = mx;
                gy = my;
                plane_idx = b - 3;
                if (pred) {
                    p = pred + 256 + (b - 4) * 64;
                    pstride = 8;
                    const_cast<memsim::SimBuffer<uint8_t> *>(pred_buf)
                        ->traceLoadRow(256 + (b - 4) * 64, 64);
                }
            }
            blocks[b] = analyzeBlock(rp, pl, x0, y0, p, pstride,
                                     intra, luma, qp, plane_idx, gx,
                                     gy);
            if (blocks[b].coded)
                cbp |= 1 << b;
        }
        } // dct_quant stage

        // ---------------- skip decision & bit writing -----------
        {
        obs::StageScope rlcScope(st, obs::Stage::Rlc);
        if (hdr.type == VopType::P && !intra && !use_4mv &&
            cbp == 0 && fwd.mv.isZero()) {
            bw.putBit(true); // not_coded
            ++stats.skippedMbs;
            rp.setMv(0, {0, 0});
        } else if (is_b && cbp == 0 &&
                   ((mode == 0 && fwd.mv.isZero()) ||
                    (mode == 1 && bwd.mv.isZero() && !fwd_ok))) {
            bw.putBit(true); // B skip: default direction, mv 0
            ++stats.skippedMbs;
        } else {
            if (hdr.type != VopType::I)
                bw.putBit(false); // coded
            if (hdr.type == VopType::P)
                bw.putBit(intra);
            if (is_b) {
                bits::putUe(bw, static_cast<uint32_t>(mode));
                if (mode != 1) { // uses forward mv
                    const MotionVector pmv = rp.predictMv(0);
                    bits::putSe(bw, fwd.mv.x - pmv.x);
                    bits::putSe(bw, fwd.mv.y - pmv.y);
                    rp.setMv(0, fwd.mv);
                }
                if (mode != 0 && !cfg_.enhancement) {
                    const MotionVector pmv = rp.predictMv(1);
                    bits::putSe(bw, bwd.mv.x - pmv.x);
                    bits::putSe(bw, bwd.mv.y - pmv.y);
                    rp.setMv(1, bwd.mv);
                }
                if (mode == 0)
                    ++stats.interMbs;
                else if (mode == 1)
                    ++stats.backwardMbs;
                else
                    ++stats.bidirectionalMbs;
            } else if (!intra) {
                const MotionVector pmv = rp.predictMv(0);
                bw.putBit(use_4mv);
                if (use_4mv) {
                    for (int b = 0; b < 4; ++b) {
                        bits::putSe(bw, mv4[b].x - pmv.x);
                        bits::putSe(bw, mv4[b].y - pmv.y);
                    }
                    // Neighbour prediction sees the average.
                    rp.setMv(0,
                             {avg4(mv4[0].x + mv4[1].x + mv4[2].x +
                                   mv4[3].x),
                              avg4(mv4[0].y + mv4[1].y + mv4[2].y +
                                   mv4[3].y)});
                    ++stats.fourMvMbs;
                } else {
                    bits::putSe(bw, fwd.mv.x - pmv.x);
                    bits::putSe(bw, fwd.mv.y - pmv.y);
                    rp.setMv(0, fwd.mv);
                }
                ++stats.interMbs;
            } else {
                ++stats.intraMbs;
            }

            if (intra) {
                for (int b = 0; b < 6; ++b) {
                    bits::putSe(bw, blocks[b].dcDelta);
                    txw.putBit(blocks[b].coded);
                    if (blocks[b].coded)
                        writeBlockEvents(txw, blocks[b].events);
                }
            } else {
                txw.putBits(static_cast<uint32_t>(cbp), 6);
                for (int b = 0; b < 6; ++b) {
                    if (blocks[b].coded)
                        writeBlockEvents(txw, blocks[b].events);
                }
            }
            stats.codedBlocks += std::popcount(
                static_cast<unsigned>(cbp));
        }
        } // rlc stage

        // ---------------- reconstruction ------------------------
        if (recon) {
            obs::StageScope reconScope(st, obs::Stage::Recon);
            for (int b = 0; b < 6; ++b) {
                const bool luma = b < 4;
                const int bx = b & 1;
                const int by = (b >> 1) & 1;
                video::Plane &pl = recon->plane(luma ? 0 : b - 3);
                int x0, y0;
                const uint8_t *p = nullptr;
                int pstride = 0;
                if (luma) {
                    x0 = px + bx * 8;
                    y0 = py + by * 8;
                    if (pred) {
                        p = pred + by * 8 * kMb + bx * 8;
                        pstride = kMb;
                    }
                } else {
                    x0 = px / 2;
                    y0 = py / 2;
                    if (pred) {
                        p = pred + 256 + (b - 4) * 64;
                        pstride = 8;
                    }
                }
                reconBlock(blocks[b], p, pstride, intra, b < 4, qp,
                           &pl, x0, y0);
            }
        }
    }

    obs::emitStageSpans("codec", "enc", st);
    static obs::Counter &rowsC = obs::counter("enc.rows");
    static obs::Counter &mbsC = obs::counter("enc.mbs");
    static obs::Histogram &rowMbsH =
        obs::histogram("enc.row_mb_count", {8, 16, 32, 64, 128});
    rowsC.add();
    mbsC.add(static_cast<uint64_t>(win.w));
    rowMbsH.observe(static_cast<double>(win.w));
    return stats;
}

VopStats
VopEncoder::encode(bits::BitWriter &bw, const VopHeader &hdr,
                   const video::Yuv420Image &cur,
                   const video::Plane *alpha, const RefFrames &refs,
                   video::Yuv420Image *recon, video::Plane *recon_alpha)
{
    M4PS_ASSERT(cur.width() == cfg_.width &&
                cur.height() == cfg_.height, "frame size mismatch");
    M4PS_ASSERT(!cfg_.hasShape || alpha, "shaped VOL needs alpha");
    M4PS_ASSERT(hdr.type == VopType::I || refs.past || refs.future,
                "predicted VOP without references");

    obs::Span vopSpan("codec", "enc.vop");
    std::optional<memsim::MemoryHierarchy::ScopedRegion> region;
    if (mem_)
        region.emplace(*mem_, "VopEncode");

    const uint64_t start_bits = bw.bitCount();
    writeVopHeader(bw, hdr);
    resetVopState(hdr);

    VopStats stats;
    stats.type = hdr.type;
    std::vector<BabMode> modes;
    if (cfg_.hasShape)
        encodeShapePass(bw, hdr, *alpha, modes);

    const bool fwd_ok = refs.past != nullptr;
    const bool bwd_ok = hdr.type == VopType::B &&
                        refs.future != nullptr;
    M4PS_ASSERT(hdr.type != VopType::P || fwd_ok,
                "P-VOP needs a past reference");
    M4PS_ASSERT(hdr.type != VopType::B || fwd_ok || bwd_ok,
                "B-VOP needs a reference");

    const video::Rect &win = hdr.mbWindow;
    const int rows = win.h;
    support::ThreadPool &pool = support::ThreadPool::global();
    const bool dp = hdr.packetized && hdr.dataPartitioned;
    std::vector<bits::BitWriter> rowBw(rows);
    std::vector<bits::BitWriter> rowTex(dp ? rows : 0);
    std::vector<VopStats> rowStats(rows);
    // Shards defer each row's memory trace so a parallel run can
    // replay it in raster order and land on the exact counters a
    // sequential run produces.  Sequential runs (and untraced runs)
    // skip the detour and simulate directly.
    std::vector<memsim::TraceShard> shards;
    if (mem_ && pool.threads() > 1 && rows > 1)
        shards.resize(rows);

    pool.parallelFor(rows, [&](int r) {
        ShardBinding bind(shards.empty() ? nullptr : &shards[r]);
        rowStats[r] = encodeTextureRow(rowBw[r],
                                       dp ? &rowTex[r] : nullptr, hdr,
                                       win.y + r, cur, modes, refs,
                                       recon);
    });

    if (hdr.packetized) {
        appendPackets(bw, hdr, rowBw, dp ? &rowTex : nullptr);
        // Trace replay and stats stay raster-ordered regardless of
        // how the rows were grouped into packets.
        for (int r = 0; r < rows; ++r) {
            if (!shards.empty())
                mem_->merge(shards[r]);
            stats += rowStats[r];
        }
    } else {
        // Deterministic merge: the row-length table, then every row's
        // payload bits and deferred trace, all in raster order.  The
        // layout does not depend on the thread count.
        for (int r = 0; r < rows; ++r)
            bits::putUe(bw, static_cast<uint32_t>(rowBw[r].bitCount()));
        for (int r = 0; r < rows; ++r) {
            bw.append(rowBw[r]);
            if (!shards.empty())
                mem_->merge(shards[r]);
            stats += rowStats[r];
        }
    }

    if (recon_alpha && alpha)
        recon_alpha->copyFrom(*alpha);

    stats.bits = bw.bitCount() - start_bits;
    tick(static_cast<double>(stats.bits) * kEncodeCyclesPerBit);

    static obs::Counter &vopsC = obs::counter("enc.vops");
    static obs::Counter &bitsC = obs::counter("enc.bits");
    vopsC.add();
    bitsC.add(stats.bits);
    if (vopSpan.active()) {
        vopSpan.setArgs("{\"type\":" +
                        std::to_string(vopTypeBits(hdr.type)) +
                        ",\"rows\":" + std::to_string(rows) +
                        ",\"bits\":" + std::to_string(stats.bits) +
                        "}");
    }
    return stats;
}

void
VopEncoder::appendPackets(bits::BitWriter &bw, const VopHeader &hdr,
                          const std::vector<bits::BitWriter> &rowBw,
                          const std::vector<bits::BitWriter> *rowTex)
{
    const int rows = static_cast<int>(rowBw.size());
    const int interval = std::max(1, cfg_.resyncInterval);
    for (int r0 = 0; r0 < rows; r0 += interval) {
        const int n = std::min(interval, rows - r0);
        // Packet header.  The quantizer, VOP type, and timestamp
        // duplicate fields from the VOP header (header-extension-code
        // style redundancy) so a decoder that lost the VOP header can
        // still validate the packet belongs here.
        bits::putResyncMarker(bw);
        bits::putUe(bw, static_cast<uint32_t>(r0));
        bits::putUe(bw, static_cast<uint32_t>(n));
        bw.putBits(static_cast<uint32_t>(hdr.qp), 5);
        bw.putBits(static_cast<uint32_t>(vopTypeBits(hdr.type)), 2);
        bits::putUe(bw, static_cast<uint32_t>(hdr.timestamp));
        for (int r = r0; r < r0 + n; ++r)
            bits::putUe(bw, static_cast<uint32_t>(rowBw[r].bitCount()));
        for (int r = r0; r < r0 + n; ++r)
            bw.append(rowBw[r]);
        if (rowTex) {
            // Data partitioning: motion/mode/DC bits above, then the
            // motion marker, then the texture partition.
            bits::putMotionMarker(bw);
            for (int r = r0; r < r0 + n; ++r) {
                bits::putUe(bw, static_cast<uint32_t>(
                    (*rowTex)[r].bitCount()));
            }
            for (int r = r0; r < r0 + n; ++r)
                bw.append((*rowTex)[r]);
        }
    }
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

/**
 * Intermediate-structure hops per macroblock in the reference
 * decoder's reconstruction path (see VopDecoder::marshalMacroblock).
 */
constexpr int kMarshalPasses = 8;

VopDecoder::VopDecoder(memsim::SimContext &ctx, const VolConfig &cfg)
    : VopCodecBase(ctx, cfg), mbAssembly_(ctx, 384),
      clipTable_(ctx, 1024)
{
}

void
VopDecoder::marshalMacroblock()
{
    // The compiler also prefetches inside these copy loops; the
    // buffer is L1-resident, so the prefetches are nearly all nops -
    // the waste the paper measures.
    mbAssembly_.prefetch(0);
    for (int pass = 0; pass < kMarshalPasses; ++pass) {
        mbAssembly_.traceStoreRow(0, 384);
        mbAssembly_.traceLoadRow(0, 384);
    }
}

namespace
{

/** Validate (last,run,level) events against block bounds. */
bool
validEvents(const std::vector<RunLevel> &events, int first)
{
    if (events.empty() || !events.back().last)
        return false;
    int pos = first;
    for (const RunLevel &e : events) {
        if (e.level == 0 || e.run < 0)
            return false;
        pos += e.run;
        if (pos >= kBlockSize)
            return false;
        ++pos;
    }
    return true;
}

} // namespace

void
VopDecoder::decodeShapePass(bits::BitReader &br, const VopHeader &hdr,
                            video::Plane &alpha,
                            std::vector<BabMode> &modes)
{
    const video::Rect &win = hdr.mbWindow;
    modes.clear();
    modes.reserve(static_cast<size_t>(win.w) * win.h);
    for (int i = 0; i < win.w * win.h; ++i) {
        const uint32_t m = bits::getUe(br);
        modes.push_back(m <= 2 ? static_cast<BabMode>(m)
                               : BabMode::Transparent);
    }
    const uint32_t payload_len = bits::getUe(br);
    if (payload_len > br.bitsLeft() / 8 + 8)
        throw StreamError("shape payload longer than the stream");
    br.byteAlign();
    std::vector<uint8_t> payload(payload_len);
    for (uint32_t i = 0; i < payload_len; ++i)
        payload[i] = static_cast<uint8_t>(br.getBits(8));

    // The plane outside the window is transparent by definition.
    alpha.fill(0);
    ArithDecoder dec(payload);
    size_t idx = 0;
    for (int my = win.y; my < win.y + win.h; ++my) {
        for (int mx = win.x; mx < win.x + win.w; ++mx, ++idx) {
            const int px = mx * kMb;
            const int py = my * kMb;
            switch (modes[idx]) {
              case BabMode::Transparent:
                for (int row = 0; row < kMb; ++row) {
                    uint8_t *r = alpha.rowPtr(py + row) + px;
                    std::fill(r, r + kMb, 0);
                    alpha.traceStoreRow(px, py + row, kMb);
                }
                break;
              case BabMode::Opaque:
                for (int row = 0; row < kMb; ++row) {
                    uint8_t *r = alpha.rowPtr(py + row) + px;
                    std::fill(r, r + kMb, 255);
                    alpha.traceStoreRow(px, py + row, kMb);
                }
                break;
              case BabMode::Coded:
                shape_.decodeBab(dec, alpha, px, py);
                break;
            }
        }
    }
}

void
VopDecoder::decodeBlockInto(RowPredictors &rp, bits::BitReader &br,
                            bits::BitReader &tex, bool intra, bool luma,
                            int qp, int plane_idx, int bx, int by,
                            const uint8_t *pred, int pred_stride,
                            video::Plane &out, int x0, int y0,
                            bool coded, obs::StageTimes &st)
{
    // Mirrors the encoder's partition split: DC deltas travel with
    // the motion partition (br), coefficient data with the texture
    // partition (tex).  Callers alias the two when not partitioned.
    Block scanned;
    scanned.fill(0);
    int dc_level = 0;
    bool any = false;
    {
    obs::StageScope rlcScope(st, obs::Stage::Rlc);
    if (intra) {
        const int dc_delta = bits::getSe(br);
        dc_level = rp.predictDc(plane_idx, bx, by) + dc_delta;
        rp.setDc(plane_idx, bx, by, dc_level);
        const bool has_ac = tex.getBit();
        if (has_ac) {
            const auto events = readBlockEvents(tex);
            if (!validEvents(events, 1))
                throw StreamError("corrupt intra block events");
            runLengthDecode(events, scanned, 1);
        }
        any = has_ac || dc_level != 0;
        traceBlockStore(kScanned);
    } else if (coded) {
        const auto events = readBlockEvents(tex);
        if (!validEvents(events, 0))
            throw StreamError("corrupt inter block events");
        runLengthDecode(events, scanned, 0);
        any = true;
        traceBlockStore(kScanned);
    }
    } // rlc stage

    Block idct;
    if (any) {
        obs::StageScope dctScope(st, obs::Stage::DctQuant);
        Block levels;
        traceBlockLoad(kScanned);
        unscan(scanned, levels);
        traceBlockStore(kLevels);
        tick(kPassCycles);
        if (intra)
            levels[0] = static_cast<int16_t>(dc_level);
        QuantParams qparams{qp, intra, cfg_.mpegQuant, luma};
        Block dequant;
        traceBlockLoad(kLevels);
        dequantize(levels, dequant, qparams);
        traceBlockStore(kDequant);
        tick(kPassCycles);
        traceBlockLoad(kDequant);
        inverseDct(dequant, idct);
        // Two-pass transform: intermediate transpose array.
        traceBlockStore(kCoef);
        traceBlockLoad(kCoef);
        traceBlockStore(kIdct);
        tick(kDctCycles);
    } else {
        idct.fill(0);
    }

    obs::StageScope reconScope(st, obs::Stage::Recon);
    traceBlockLoad(kIdct);
    // Saturation via the reference decoder's clip lookup table.
    clipTable_.traceLoadRow(0, kBlockSize);
    for (int row = 0; row < kBlockEdge; ++row) {
        uint8_t *r = out.rowPtr(y0 + row) + x0;
        for (int i = 0; i < kBlockEdge; ++i) {
            const int base = intra ? 128 : pred[row * pred_stride + i];
            r[i] = static_cast<uint8_t>(
                std::clamp(base + idct[row * kBlockEdge + i], 0, 255));
        }
        out.traceStoreRow(x0, y0 + row, kBlockEdge);
    }
}

VopStats
VopDecoder::decodeTextureRow(bits::BitReader &br, bits::BitReader *tex,
                             const VopHeader &hdr,
                             int my, const std::vector<BabMode> &modes,
                             const RefFrames &refs,
                             video::Yuv420Image &out,
                             MotionVector *mv_row)
{
    bits::BitReader &txr = tex ? *tex : br;
    const video::Rect &win = hdr.mbWindow;
    const int qp = hdr.qp;
    const bool is_b = hdr.type == VopType::B;
    const bool fwd_ok = refs.past != nullptr;
    const bool bwd_ok = is_b && refs.future != nullptr;

    VopStats stats;
    RowPredictors rp(cfg_.mbWidth(), my);
    // Row-private prediction pixels (see encodeTextureRow).
    uint8_t fwdData[384];
    uint8_t bwdData[384];
    uint8_t biData[384];

    obs::Span rowSpan("codec", "dec.row");
    if (rowSpan.active())
        rowSpan.setArgs("{\"row\":" + std::to_string(my) + "}");
    obs::StageTimes st;
    obs::beginStages(st);

    size_t mode_idx = static_cast<size_t>(my - win.y) * win.w;
    for (int mx = win.x; mx < win.x + win.w; ++mx, ++mode_idx) {
        rp.beginMb();
        const int px = mx * kMb;
        const int py = my * kMb;
        const BabMode bab = cfg_.hasShape ? modes[mode_idx]
                                          : BabMode::Opaque;
        if (bab == BabMode::Transparent) {
            ++stats.transparentMbs;
            for (int p = 0; p < 3; ++p) {
                video::Plane &pl = out.plane(p);
                const int sh = p == 0 ? 0 : 1;
                for (int row = 0; row < kMb >> sh; ++row) {
                    uint8_t *r = pl.rowPtr((py >> sh) + row)
                                 + (px >> sh);
                    std::fill(r, r + (kMb >> sh), 128);
                    pl.traceStoreRow(px >> sh, (py >> sh) + row,
                                     kMb >> sh);
                }
            }
            continue;
        }

        bool intra = hdr.type == VopType::I;
        bool skipped = false;
        bool use_4mv = false;
        int mode = 0;
        MotionVector mvf{}, mvb{}, mv4[4]{};
        int cbp = 0;

        {
        obs::StageScope motionScope(st, obs::Stage::Motion);
        if (hdr.type != VopType::I) {
            skipped = br.getBit();
            if (skipped) {
                ++stats.skippedMbs;
                if (is_b)
                    mode = fwd_ok ? 0 : 1;
                if (!is_b)
                    rp.setMv(0, {0, 0});
                intra = false;
            } else {
                if (hdr.type == VopType::P)
                    intra = br.getBit();
                if (is_b) {
                    mode = static_cast<int>(bits::getUe(br));
                    if (mode > 2)
                        mode = 0; // corrupt stream tolerance
                    if (mode != 1) {
                        const MotionVector pmv = rp.predictMv(0);
                        mvf.x = pmv.x + bits::getSe(br);
                        mvf.y = pmv.y + bits::getSe(br);
                        rp.setMv(0, mvf);
                    }
                    if (mode != 0 && !cfg_.enhancement) {
                        const MotionVector pmv = rp.predictMv(1);
                        mvb.x = pmv.x + bits::getSe(br);
                        mvb.y = pmv.y + bits::getSe(br);
                        rp.setMv(1, mvb);
                    }
                    if (mode == 0)
                        ++stats.interMbs;
                    else if (mode == 1)
                        ++stats.backwardMbs;
                    else
                        ++stats.bidirectionalMbs;
                } else if (!intra) {
                    const MotionVector pmv = rp.predictMv(0);
                    use_4mv = br.getBit();
                    if (use_4mv) {
                        for (int b = 0; b < 4; ++b) {
                            mv4[b].x = pmv.x + bits::getSe(br);
                            mv4[b].y = pmv.y + bits::getSe(br);
                        }
                        rp.setMv(0,
                                 {avg4(mv4[0].x + mv4[1].x +
                                       mv4[2].x + mv4[3].x),
                                  avg4(mv4[0].y + mv4[1].y +
                                       mv4[2].y + mv4[3].y)});
                        ++stats.fourMvMbs;
                    } else {
                        mvf.x = pmv.x + bits::getSe(br);
                        mvf.y = pmv.y + bits::getSe(br);
                        rp.setMv(0, mvf);
                    }
                    ++stats.interMbs;
                } else {
                    ++stats.intraMbs;
                }
                if (!intra)
                    cbp = static_cast<int>(txr.getBits(6));
            }
        } else {
            ++stats.intraMbs;
        }

        // Record a concealment-candidate forward vector for this MB.
        if (mv_row) {
            MotionVector cand{0, 0};
            if (!intra) {
                if (use_4mv) {
                    cand = {avg4(mv4[0].x + mv4[1].x + mv4[2].x +
                                 mv4[3].x),
                            avg4(mv4[0].y + mv4[1].y + mv4[2].y +
                                 mv4[3].y)};
                } else if (!is_b || mode == 0 || mode == 2) {
                    cand = mvf;
                }
            }
            mv_row[mx - win.x] = cand;
        }
        } // motion stage

        // ---------------- prediction build ----------------------
        const uint8_t *pred = nullptr;
        if (!intra) {
            obs::StageScope reconScope(st, obs::Stage::Recon);
            auto build = [&](const video::Yuv420Image &ref,
                             const HalfPelPlanes *interp,
                             MotionVector mv, uint8_t *dst,
                             memsim::SimBuffer<uint8_t> &trace) {
                if (interp && !interp->empty()) {
                    predictLuma16FromInterp(ref.y(), *interp, px,
                                            py, mv, dst);
                } else {
                    predictLuma16(ref.y(), px, py, mv, dst);
                }
                trace.traceStoreRow(0, 256);
                predictChroma8(ref.u(), px / 2, py / 2, mv,
                               dst + 256);
                predictChroma8(ref.v(), px / 2, py / 2, mv,
                               dst + 320);
                trace.traceStoreRow(256, 128);
            };
            if (is_b) {
                // Corrupt mode bits can ask for a reference that is
                // not there; that is a stream error, not a bug.
                if (mode == 0 || mode == 2) {
                    if (!fwd_ok)
                        throw StreamError("fwd mode without past ref");
                    build(*refs.past, refs.pastInterp, mvf, fwdData,
                          predFwd_);
                }
                if (mode == 1 || mode == 2) {
                    if (!bwd_ok)
                        throw StreamError("bwd mode without ref");
                    build(*refs.future, refs.futureInterp, mvb,
                          bwdData, predBwd_);
                }
                if (mode == 2) {
                    predFwd_.traceLoadRow(0, 384);
                    predBwd_.traceLoadRow(0, 384);
                    averagePrediction(fwdData, bwdData, 384, biData);
                    predBi_.traceStoreRow(0, 384);
                }
                pred = mode == 0 ? fwdData
                       : mode == 1 ? bwdData : biData;
            } else if (use_4mv) {
                if (!fwd_ok)
                    throw StreamError("4MV MB without past ref");
                uint8_t tmp[64];
                for (int b = 0; b < 4; ++b) {
                    predictLuma8(refs.past->y(), px + (b & 1) * 8,
                                 py + (b >> 1) * 8, mv4[b], tmp);
                    uint8_t *dst = fwdData +
                                   (b >> 1) * 8 * 16 + (b & 1) * 8;
                    for (int row = 0; row < 8; ++row) {
                        std::copy(tmp + row * 8, tmp + row * 8 + 8,
                                  dst + row * 16);
                    }
                }
                predFwd_.traceStoreRow(0, 256);
                const MotionVector cavg{
                    avg4(mv4[0].x + mv4[1].x + mv4[2].x + mv4[3].x),
                    avg4(mv4[0].y + mv4[1].y + mv4[2].y +
                         mv4[3].y)};
                predictChroma8(refs.past->u(), px / 2, py / 2,
                               cavg, fwdData + 256);
                predictChroma8(refs.past->v(), px / 2, py / 2,
                               cavg, fwdData + 320);
                predFwd_.traceStoreRow(256, 128);
                pred = fwdData;
            } else {
                if (!fwd_ok)
                    throw StreamError("P-VOP without past ref");
                build(*refs.past, refs.pastInterp, mvf, fwdData,
                      predFwd_);
                pred = fwdData;
            }
        }

        // ---------------- block decode --------------------------
        const memsim::SimBuffer<uint8_t> *pred_buf =
            is_b ? (mode == 0 ? &predFwd_
                    : mode == 1 ? &predBwd_ : &predBi_)
                 : &predFwd_;
        for (int b = 0; b < 6; ++b) {
            const bool luma = b < 4;
            const int bx = b & 1;
            const int by = (b >> 1) & 1;
            video::Plane &pl = out.plane(luma ? 0 : b - 3);
            int x0, y0, gx, gy, plane_idx;
            const uint8_t *p = nullptr;
            int pstride = 0;
            if (luma) {
                x0 = px + bx * 8;
                y0 = py + by * 8;
                gx = 2 * mx + bx;
                gy = 2 * my + by;
                plane_idx = 0;
                if (pred) {
                    p = pred + by * 8 * kMb + bx * 8;
                    pstride = kMb;
                    const_cast<memsim::SimBuffer<uint8_t> *>(pred_buf)
                        ->traceLoadRow(
                            static_cast<size_t>(by) * 128 + bx * 8, 64);
                }
            } else {
                x0 = px / 2;
                y0 = py / 2;
                gx = mx;
                gy = my;
                plane_idx = b - 3;
                if (pred) {
                    p = pred + 256 + (b - 4) * 64;
                    pstride = 8;
                    const_cast<memsim::SimBuffer<uint8_t> *>(pred_buf)
                        ->traceLoadRow(256 + (b - 4) * 64, 64);
                }
            }
            const bool coded =
                !skipped && !intra && ((cbp >> b) & 1);
            if (coded || intra || !skipped)
                stats.codedBlocks += coded ? 1 : 0;
            if (skipped) {
                // Straight copy of the prediction.
                obs::StageScope reconScope(st, obs::Stage::Recon);
                for (int row = 0; row < kBlockEdge; ++row) {
                    uint8_t *r = pl.rowPtr(y0 + row) + x0;
                    for (int i = 0; i < kBlockEdge; ++i)
                        r[i] = p[row * pstride + i];
                    pl.traceStoreRow(x0, y0 + row, kBlockEdge);
                }
            } else {
                decodeBlockInto(rp, br, txr, intra, luma, qp,
                                plane_idx, gx, gy, p, pstride, pl,
                                x0, y0, coded, st);
            }
        }
        marshalMacroblock();
        if (br.overrun() || txr.overrun())
            throw StreamError("bitstream exhausted mid-VOP "
                              "(corrupt or truncated stream)");
    }

    obs::emitStageSpans("codec", "dec", st);
    static obs::Counter &rowsC = obs::counter("dec.rows");
    static obs::Counter &mbsC = obs::counter("dec.mbs");
    rowsC.add();
    mbsC.add(static_cast<uint64_t>(win.w));
    return stats;
}

VopStats
VopDecoder::decode(bits::BitReader &br, const VopHeader &hdr,
                   const RefFrames &refs, video::Yuv420Image &out,
                   video::Plane *out_alpha)
{
    M4PS_ASSERT(out.width() == cfg_.width &&
                out.height() == cfg_.height, "frame size mismatch");
    M4PS_ASSERT(!cfg_.hasShape || out_alpha,
                "shaped VOL needs an alpha output");

    obs::Span vopSpan("codec", "dec.vop");
    std::optional<memsim::MemoryHierarchy::ScopedRegion> region;
    if (mem_)
        region.emplace(*mem_, "VopDecode");

    const video::Rect &win = hdr.mbWindow;
    if (win.x < 0 || win.y < 0 || win.w <= 0 || win.h <= 0 ||
        win.x + win.w > cfg_.mbWidth() ||
        win.y + win.h > cfg_.mbHeight()) {
        throw StreamError("VOP window outside the VOL");
    }
    if (hdr.qp < 1 || hdr.qp > 31)
        throw StreamError("VOP quantizer out of range");
    const uint64_t start_bits = br.bitPos();
    resetVopState(hdr);

    VopStats stats;
    stats.type = hdr.type;
    std::vector<BabMode> modes;
    if (cfg_.hasShape)
        decodeShapePass(br, hdr, *out_alpha, modes);

    const bool fwd_ok = refs.past != nullptr;
    const bool bwd_ok = hdr.type == VopType::B &&
                        refs.future != nullptr;
    if (hdr.type == VopType::P && !fwd_ok)
        throw StreamError("P-VOP without a past reference");
    if (hdr.type == VopType::B && !fwd_ok && !bwd_ok)
        throw StreamError("B-VOP without references");

    const int rows = win.h;
    support::ThreadPool &pool = support::ThreadPool::global();
    std::vector<VopStats> rowStats(rows);
    std::vector<memsim::TraceShard> shards;
    if (mem_ && pool.threads() > 1 && rows > 1)
        shards.resize(rows);

    if (hdr.packetized) {
        // Resilient VOP: rows arrive in video packets.  Packets that
        // fail validation are skipped (their rows stay uncovered);
        // rows whose payload fails to parse are flagged bad.  Both
        // classes are concealed after the good rows land.
        std::vector<RowSpan> spans(rows);
        parsePackets(br, hdr, spans, stats);

        std::vector<MotionVector> mvField(
            static_cast<size_t>(rows) * win.w);
        std::vector<uint8_t> rowGood(rows, 0);

        pool.parallelFor(rows, [&](int r) {
            if (!spans[r].covered)
                return;
            ShardBinding bind(shards.empty() ? nullptr : &shards[r]);
            bits::BitReader rbr = br;
            rbr.seekBits(spans[r].start);
            bits::BitReader texr = br;
            const bool dp = hdr.dataPartitioned;
            if (dp)
                texr.seekBits(spans[r].texStart);
            try {
                rowStats[r] = decodeTextureRow(
                    rbr, dp ? &texr : nullptr, hdr, win.y + r, modes,
                    refs, out,
                    mvField.data() + static_cast<size_t>(r) * win.w);
                if (rbr.overrun() ||
                    rbr.bitPos() != spans[r].start + spans[r].bits ||
                    (dp && (texr.overrun() ||
                            texr.bitPos() !=
                                spans[r].texStart + spans[r].texBits))) {
                    throw StreamError("slice row does not match its "
                                      "coded length");
                }
                rowGood[r] = 1;
            } catch (const StreamError &) {
                rowStats[r] = VopStats{};
            }
        });

        for (int r = 0; r < rows; ++r) {
            if (!shards.empty())
                mem_->merge(shards[r]);
            stats += rowStats[r];
        }

        // Sequential concealment pass over everything that was lost.
        for (int r = 0; r < rows; ++r) {
            if (!rowGood[r])
                concealRow(r, hdr, refs, mvField, rowGood, out, stats);
        }
    } else {
        // Row-length table: per-row payload sizes in bits, raster
        // order.
        std::vector<uint64_t> rowBits(rows);
        uint64_t total = 0;
        for (int r = 0; r < rows; ++r) {
            rowBits[r] = bits::getUe(br);
            total += rowBits[r];
        }
        if (br.overrun() || total > br.bitsLeft())
            throw StreamError("corrupt slice-row length table");
        const uint64_t base = br.bitPos();
        std::vector<uint64_t> rowStart(rows);
        uint64_t off = base;
        for (int r = 0; r < rows; ++r) {
            rowStart[r] = off;
            off += rowBits[r];
        }

        pool.parallelFor(rows, [&](int r) {
            ShardBinding bind(shards.empty() ? nullptr : &shards[r]);
            bits::BitReader rbr = br;
            rbr.seekBits(rowStart[r]);
            try {
                rowStats[r] = decodeTextureRow(rbr, nullptr, hdr,
                                               win.y + r, modes, refs,
                                               out, nullptr);
                if (rbr.overrun() ||
                    rbr.bitPos() != rowStart[r] + rowBits[r]) {
                    throw StreamError("slice row does not match its "
                                      "coded length");
                }
            } catch (const StreamError &) {
                // Slice concealment: rows are independent, so a
                // corrupt payload costs exactly this row.  The frame
                // store keeps whatever it held before; neighbours are
                // unaffected and the outer reader continues at the
                // table's offsets.
                rowStats[r] = VopStats{};
                rowStats[r].corruptedRows = 1;
            }
        });

        br.seekBits(base + total);
        for (int r = 0; r < rows; ++r) {
            if (!shards.empty())
                mem_->merge(shards[r]);
            stats += rowStats[r];
        }
    }

    stats.bits = br.bitPos() - start_bits;
    tick(static_cast<double>(stats.bits) * kDecodeCyclesPerBit);

    static obs::Counter &vopsC = obs::counter("dec.vops");
    static obs::Counter &concealedC = obs::counter("dec.concealed_mbs");
    static obs::Counter &corruptC = obs::counter("dec.corrupt_packets");
    vopsC.add();
    concealedC.add(static_cast<uint64_t>(stats.concealedMbs));
    corruptC.add(static_cast<uint64_t>(stats.corruptPackets));
    if (vopSpan.active()) {
        vopSpan.setArgs("{\"type\":" +
                        std::to_string(vopTypeBits(hdr.type)) +
                        ",\"rows\":" + std::to_string(rows) +
                        ",\"bits\":" + std::to_string(stats.bits) +
                        "}");
    }
    return stats;
}

void
VopDecoder::parsePackets(bits::BitReader &br, const VopHeader &hdr,
                         std::vector<RowSpan> &spans, VopStats &stats)
{
    const video::Rect &win = hdr.mbWindow;
    const int rows = win.h;
    for (;;) {
        const bits::PacketScan scan = bits::nextPacketBoundary(br);
        if (scan != bits::PacketScan::Resync)
            break; // Next startcode (left unconsumed) or stream end.

        // Packet header; every field is validated against the VOP
        // header before the payload is trusted.
        const int r0 = static_cast<int>(bits::getUe(br));
        const int n = static_cast<int>(bits::getUe(br));
        const int qp = static_cast<int>(br.getBits(5));
        const int type_bits = static_cast<int>(br.getBits(2));
        const int ts = static_cast<int>(bits::getUe(br));
        if (br.overrun() || r0 < 0 || n < 1 || r0 >= rows ||
            n > rows - r0 || qp != hdr.qp ||
            type_bits != vopTypeBits(hdr.type) ||
            ts != hdr.timestamp) {
            ++stats.corruptPackets;
            continue; // Rescan for the next marker.
        }

        const bool dp = hdr.dataPartitioned;
        std::vector<uint64_t> lens(n);
        uint64_t total = 0;
        for (int i = 0; i < n; ++i) {
            lens[i] = bits::getUe(br);
            total += lens[i];
        }
        if (br.overrun() || total > br.bitsLeft()) {
            ++stats.corruptPackets;
            continue;
        }
        uint64_t off = br.bitPos();
        const uint64_t motion_end = off + total;
        std::vector<uint64_t> starts(n);
        for (int i = 0; i < n; ++i) {
            starts[i] = off;
            off += lens[i];
        }

        std::vector<uint64_t> texLens(dp ? n : 0);
        std::vector<uint64_t> texStarts(dp ? n : 0);
        if (dp) {
            // The texture partition sits behind a byte-aligned motion
            // marker at the end of the motion partition.
            br.seekBits(motion_end);
            br.byteAlign();
            if (br.bitsLeft() < 24 ||
                br.getBits(24) != bits::kMotionMarker) {
                ++stats.corruptPackets;
                br.seekBits(motion_end);
                continue;
            }
            uint64_t tex_total = 0;
            for (int i = 0; i < n; ++i) {
                texLens[i] = bits::getUe(br);
                tex_total += texLens[i];
            }
            if (br.overrun() || tex_total > br.bitsLeft()) {
                ++stats.corruptPackets;
                continue;
            }
            uint64_t tex_off = br.bitPos();
            for (int i = 0; i < n; ++i) {
                texStarts[i] = tex_off;
                tex_off += texLens[i];
            }
            br.seekBits(tex_off);
        } else {
            br.seekBits(motion_end);
        }

        ++stats.packets;
        for (int i = 0; i < n; ++i) {
            RowSpan &s = spans[r0 + i];
            if (s.covered)
                continue; // First packet claiming a row wins.
            s.start = starts[i];
            s.bits = lens[i];
            if (dp) {
                s.texStart = texStarts[i];
                s.texBits = texLens[i];
            }
            s.covered = true;
        }
    }
}

void
VopDecoder::concealRow(int r, const VopHeader &hdr,
                       const RefFrames &refs,
                       const std::vector<MotionVector> &mvField,
                       const std::vector<uint8_t> &rowGood,
                       video::Yuv420Image &out, VopStats &stats)
{
    const video::Rect &win = hdr.mbWindow;
    const int rows = win.h;

    // Nearest surviving row donates its motion field; ties prefer
    // the row above (its vectors were predicted top-down, like ours
    // would have been).
    int donor = -1;
    for (int d = 1; d < rows && donor < 0; ++d) {
        if (r - d >= 0 && rowGood[r - d])
            donor = r - d;
        else if (r + d < rows && rowGood[r + d])
            donor = r + d;
    }

    const video::Yuv420Image *src = refs.past;
    const bool use_mv = src != nullptr;
    if (!src)
        src = refs.future; // Zero-MV fallback for a lost B/I row.

    if (!src) {
        // No reference at all (lost I-VOP rows): the frame store
        // keeps whatever it held, which is the best we can do.
        stats.corruptedRows += 1;
        return;
    }

    uint8_t buf[384];
    const int my = win.y + r;
    for (int mx = win.x; mx < win.x + win.w; ++mx) {
        MotionVector mv{0, 0};
        if (use_mv && donor >= 0) {
            mv = mvField[static_cast<size_t>(donor) * win.w +
                         (mx - win.x)];
        }
        const int px = mx * kMb;
        const int py = my * kMb;
        predictLuma16(src->y(), px, py, mv, buf);
        predFwd_.traceStoreRow(0, 256);
        predictChroma8(src->u(), px / 2, py / 2, mv, buf + 256);
        predictChroma8(src->v(), px / 2, py / 2, mv, buf + 320);
        predFwd_.traceStoreRow(256, 128);
        predFwd_.traceLoadRow(0, 384);
        const kernels::KernelOps &k = kernels::active();
        for (int row = 0; row < kMb; ++row) {
            uint8_t *dst = out.y().rowPtr(py + row) + px;
            k.copyRow(buf + row * kMb, kMb, dst);
            out.y().traceStoreRow(px, py + row, kMb);
        }
        for (int p = 1; p < 3; ++p) {
            const uint8_t *s = buf + 256 + (p - 1) * 64;
            video::Plane &pl = out.plane(p);
            for (int row = 0; row < 8; ++row) {
                uint8_t *dst = pl.rowPtr(py / 2 + row) + px / 2;
                k.copyRow(s + row * 8, 8, dst);
                pl.traceStoreRow(px / 2, py / 2 + row, 8);
            }
        }
        ++stats.concealedMbs;
    }
    stats.corruptedRows += 1;
}

} // namespace m4ps::codec
