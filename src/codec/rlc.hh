/**
 * @file
 * (last, run, level) run-length coding of scanned coefficients.
 *
 * MPEG-4 codes texture blocks as three-dimensional (LAST, RUN, LEVEL)
 * events.  We keep that event structure but code each event with
 * Exp-Golomb fields instead of the standard's fixed Huffman table
 * (see DESIGN.md §5: this changes compressed size slightly, not the
 * pixel pipeline's memory behaviour).
 */

#ifndef M4PS_CODEC_RLC_HH
#define M4PS_CODEC_RLC_HH

#include <vector>

#include "bitstream/bitstream.hh"
#include "codec/dct.hh"

namespace m4ps::codec
{

/** One run-length event. */
struct RunLevel
{
    int run = 0;      //!< Zero coefficients preceding this one.
    int level = 0;    //!< Non-zero coefficient value.
    bool last = false;//!< True on the final non-zero coefficient.

    bool operator==(const RunLevel &o) const = default;
};

/**
 * Convert a scanned block (starting at index @p first) into events.
 * A block with no non-zero coefficient yields an empty vector.
 */
std::vector<RunLevel> runLengthEncode(const Block &scanned, int first = 0);

/** Expand events back into a scanned block starting at @p first. */
void runLengthDecode(const std::vector<RunLevel> &events, Block &scanned,
                     int first = 0);

/**
 * Write a coded-block payload: assumes the caller signalled
 * "block has coefficients" out of band (CBP); requires at least one
 * event.
 */
void writeBlockEvents(bits::BitWriter &bw,
                      const std::vector<RunLevel> &events);

/** Read events until the LAST flag; inverse of writeBlockEvents(). */
std::vector<RunLevel> readBlockEvents(bits::BitReader &br);

} // namespace m4ps::codec

#endif // M4PS_CODEC_RLC_HH
