/**
 * @file
 * Performance counters in the style of Irix perfex / SpeedShop.
 *
 * The paper reads the R10000/R12000 hardware event counters through
 * the Irix perfex library and wraps two hot functions in counter
 * start/stop operations.  CounterSet mirrors the events the paper
 * uses (graduated loads/stores, L1/L2 data misses, writebacks,
 * prefetches and prefetch-L1-hits) plus the simulator's cycle
 * accounting; ScopedRegion reproduces the function-wrapping
 * instrumentation used for Table 8.
 */

#ifndef M4PS_MEMSIM_COUNTERS_HH
#define M4PS_MEMSIM_COUNTERS_HH

#include <cstdint>
#include <map>
#include <string>

#include "support/json.hh"

namespace m4ps::memsim
{

/** Snapshot of every event counter the simulator maintains. */
struct CounterSet
{
    // Graduated (retired) memory operations.
    uint64_t gradLoads = 0;
    uint64_t gradStores = 0;

    // Primary data cache.
    uint64_t l1Misses = 0;
    uint64_t l1Writebacks = 0;   //!< Dirty L1 lines written to L2.

    // Secondary data cache.
    uint64_t l2Misses = 0;
    uint64_t l2Writebacks = 0;   //!< Dirty L2 lines written to DRAM.

    // Software prefetch instructions.
    uint64_t prefetches = 0;
    uint64_t prefetchL1Hits = 0; //!< Prefetches that were nops (wasted).
    uint64_t prefetchFills = 0;  //!< Prefetches that filled a line.

    // Cycle accounting (fractional cycles accumulate, so double).
    double computeCycles = 0;    //!< Issue/ALU work, misses excluded.
    double stallL2Cycles = 0;    //!< Exposed stall on L1-miss/L2-hit.
    double stallDramCycles = 0;  //!< Exposed stall on L2 miss.

    /** Total modelled execution cycles. */
    double totalCycles() const
    {
        return computeCycles + stallL2Cycles + stallDramCycles;
    }

    /** Graduated loads + stores. */
    uint64_t accesses() const { return gradLoads + gradStores; }

    CounterSet &operator+=(const CounterSet &o);
    CounterSet &operator-=(const CounterSet &o);
    CounterSet operator-(const CounterSet &o) const;

    /**
     * Exact equality, including the cycle doubles: used to assert
     * that parallel runs merge to bit-identical statistics.
     */
    bool operator==(const CounterSet &o) const;
    bool operator!=(const CounterSet &o) const { return !(*this == o); }

    /** Human-readable multi-line dump (for debugging and examples). */
    std::string str() const;

    /**
     * JSON export/import hooks for the report pipeline: a counter
     * dump written by one tool (m4ps_run --report-out, the table
     * benches) round-trips exactly through m4ps_report.  Keys are
     * snake_case field names ("grad_loads", "stall_dram_cycles", ...).
     */
    support::JsonValue toJson() const;
    static CounterSet fromJson(const support::JsonValue &v);
};

/**
 * Named accumulation buckets for function-level instrumentation.
 *
 * The paper wraps VopCode() and DecodeVopCombMotionShapeTexture() in
 * performance-counter operations; RegionProfiler plays the role of
 * that harness.  Regions may nest; a region's delta is attributed to
 * its own bucket only.
 */
class RegionProfiler
{
  public:
    /** Add @p delta into the bucket named @p region. */
    void add(const std::string &region, const CounterSet &delta);

    /** Counters accumulated for @p region (zero set if absent). */
    CounterSet get(const std::string &region) const;

    /** True if any delta was recorded for @p region. */
    bool has(const std::string &region) const;

    const std::map<std::string, CounterSet> &regions() const
    {
        return buckets_;
    }

    void clear() { buckets_.clear(); }

  private:
    std::map<std::string, CounterSet> buckets_;
};

} // namespace m4ps::memsim

#endif // M4PS_MEMSIM_COUNTERS_HH
