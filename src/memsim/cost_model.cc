#include "memsim/cost_model.hh"

#include <sstream>

namespace m4ps::memsim
{

std::string
CostModel::str() const
{
    std::ostringstream os;
    os << clockMhz << " MHz, " << cyclesPerAccess << " cyc/access, "
       << "L2 hit " << l2HitLatency << " cyc (exposure " << l2Exposure
       << "), DRAM " << dramLatency << " cyc (exposure " << dramExposure
       << ")";
    return os.str();
}

} // namespace m4ps::memsim
