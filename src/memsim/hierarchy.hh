/**
 * @file
 * Two-level data-cache hierarchy with DRAM backing.
 *
 * MemoryHierarchy glues the L1 and L2 Cache models, the CostModel,
 * and the CounterSet together.  The codec drives it with graduated
 * loads/stores (optionally coalesced into row accesses that probe
 * each covered cache line once while still counting one graduated
 * access per element - identical line-granularity behaviour, much
 * faster simulation) and software prefetches.
 *
 * Parallel runs: cache state is inherently order dependent, so
 * worker threads never touch it directly.  A task (one macroblock
 * row) binds a TraceShard to its thread; every access the task
 * performs is recorded into the shard instead of being simulated,
 * together with thread-locally accumulated order-independent
 * tallies (graduated accesses, prefetch counts, compute cycles).
 * After the parallel region the coordinating thread merges the
 * shards in deterministic row order, replaying each recorded access
 * against the real cache model.  Because the sequential encoder
 * processes rows in exactly that order, the merged counters are
 * bit-identical to a single-threaded run - no locks, no atomics on
 * the hot path, exact statistics.
 */

#ifndef M4PS_MEMSIM_HIERARCHY_HH
#define M4PS_MEMSIM_HIERARCHY_HH

#include <string>
#include <vector>

#include "memsim/cache.hh"
#include "memsim/cost_model.hh"
#include "memsim/counters.hh"
#include "support/obs/obs.hh"

namespace m4ps::memsim
{

/**
 * Per-task recording of simulated accesses plus the order-independent
 * counter tallies that can be accumulated without replay.  Single
 * writer (the bound thread); merged by one thread after the region.
 */
class TraceShard
{
  public:
    /** Drop recorded accesses and zero the tallies. */
    void
    clear()
    {
        ops_.clear();
        tallies_ = CounterSet{};
    }

    bool empty() const { return ops_.empty(); }

    /** Recorded access operations (loads, stores, prefetches, ticks). */
    size_t size() const { return ops_.size(); }

    /**
     * Order-independent counters accumulated at record time:
     * graduated loads/stores, prefetch issue counts, and compute
     * cycles.  Cache hit/miss state is only known after replay.
     */
    const CounterSet &tallies() const { return tallies_; }

  private:
    friend class MemoryHierarchy;

    enum OpKind : uint32_t
    {
        kOpLoad = 0,
        kOpStore,
        kOpLoadRow,
        kOpStoreRow,
        kOpPrefetch,
        kOpTick,
    };

    /** One recorded access; 16 bytes.  Tick stores cycles in addr. */
    struct Op
    {
        uint64_t addr;
        uint32_t bytes;
        uint32_t elemsKind; //!< (elems << 3) | OpKind.
    };

    std::vector<Op> ops_;
    CounterSet tallies_;
};

/** L1 + L2 + DRAM model with perfex-style counters. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                    const CostModel &cost);

    /** One graduated load of @p bytes at @p addr. */
    void load(uint64_t addr, int bytes);

    /** One graduated store of @p bytes at @p addr. */
    void store(uint64_t addr, int bytes);

    /**
     * @p elems graduated loads covering [@p addr, @p addr + @p bytes).
     * Each covered L1 line is probed exactly once.
     */
    void loadRow(uint64_t addr, uint64_t bytes, uint64_t elems);

    /** Store counterpart of loadRow(). */
    void storeRow(uint64_t addr, uint64_t bytes, uint64_t elems);

    /**
     * Software prefetch of the line containing @p addr.  A prefetch
     * whose line already sits in L1 is a nop that wasted issue slots
     * (counted in prefetchL1Hits); otherwise the line is filled
     * without demand-miss accounting or stall.
     */
    void prefetch(uint64_t addr);

    /** Charge @p cycles of pure compute (entropy coding etc.). */
    void tick(double cycles);

    /**
     * Bind @p shard as the current thread's recording target (null
     * unbinds).  While bound, every access on this thread is
     * recorded instead of simulated.
     */
    static void bindShard(TraceShard *shard);

    /** The shard bound to the current thread, or null. */
    static TraceShard *boundShard();

    /**
     * Replay @p shard's recorded accesses, in recording order,
     * against the cache model, then clear the shard.  Call from one
     * thread, in deterministic task order, after the workers have
     * finished: the resulting counters are exactly those of a
     * sequential run that executed the tasks in merge order.
     */
    void merge(TraceShard &shard);

    const CounterSet &counters() const { return ctrs_; }
    RegionProfiler &profiler() { return prof_; }
    const RegionProfiler &profiler() const { return prof_; }

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const CostModel &cost() const { return cost_; }

    /** Modelled execution time so far, in seconds. */
    double elapsedSeconds() const
    {
        return cost_.seconds(ctrs_.totalCycles());
    }

    /**
     * RAII counter region (the paper's SpeedShop-style function
     * wrapping).  On destruction the counter delta since construction
     * is accumulated into the named profiler bucket.
     */
    class ScopedRegion
    {
      public:
        ScopedRegion(MemoryHierarchy &mh, std::string name)
            : mh_(mh), name_(std::move(name)), start_(mh.counters())
        {
            if (obs::tracingEnabled())
                obsStartNs_ = obs::nowNs();
        }

        ~ScopedRegion()
        {
            const CounterSet delta = mh_.counters() - start_;
            mh_.profiler().add(name_, delta);
            if (obsStartNs_) {
                // Trace span named after the region, carrying the
                // counter delta (the paper's perfex numbers) as args.
                obs::completeEvent("memsim", "memsim." + name_,
                                   obsStartNs_,
                                   obs::nowNs() - obsStartNs_,
                                   counterArgsJson(delta));
            }
        }

        ScopedRegion(const ScopedRegion &) = delete;
        ScopedRegion &operator=(const ScopedRegion &) = delete;

      private:
        MemoryHierarchy &mh_;
        std::string name_;
        CounterSet start_;
        uint64_t obsStartNs_ = 0;
    };

    /** JSON object of a CounterSet's headline events (span args). */
    static std::string counterArgsJson(const CounterSet &c);

  private:
    /** Demand access to one L1 line. */
    void touchLine(uint64_t addr, bool is_write);

    /** Write a dirty L1 victim down into L2. */
    void writebackToL2(uint64_t addr);

    // Immediate (cache-touching) counterparts of the public API.
    void loadNow(uint64_t addr, int bytes);
    void storeNow(uint64_t addr, int bytes);
    void loadRowNow(uint64_t addr, uint64_t bytes, uint64_t elems);
    void storeRowNow(uint64_t addr, uint64_t bytes, uint64_t elems);
    void prefetchNow(uint64_t addr);

    Cache l1_;
    Cache l2_;
    CostModel cost_;
    CounterSet ctrs_;
    RegionProfiler prof_;
    uint64_t l1LineMask_;
};

} // namespace m4ps::memsim

#endif // M4PS_MEMSIM_HIERARCHY_HH
