/**
 * @file
 * Simulated virtual address space and tracing context.
 *
 * The codec's significant data structures (frame stores, search
 * windows, coefficient scratch) are allocated simulated virtual
 * addresses so their access stream can be fed to the cache model.
 * A SimContext bundles an address space with an optional
 * MemoryHierarchy: a null hierarchy means "run untraced" (plain
 * codec execution, no simulation overhead).
 */

#ifndef M4PS_MEMSIM_ADDRESS_SPACE_HH
#define M4PS_MEMSIM_ADDRESS_SPACE_HH

#include <cstdint>

namespace m4ps::memsim
{

class MemoryHierarchy;

/** Bump allocator over a simulated virtual address space. */
class SimAddressSpace
{
  public:
    /**
     * Reserve @p bytes aligned to @p align and return the base
     * address.  Allocations are never reused; residentBytes() tracks
     * the footprint (the paper quotes "stable, resident memory").
     */
    uint64_t alloc(uint64_t bytes, uint64_t align = 64);

    /** Total bytes allocated so far. */
    uint64_t residentBytes() const { return top_ - kBase; }

  private:
    static constexpr uint64_t kBase = 0x10000; //!< Skip the null page.
    uint64_t top_ = kBase;
};

/** Address space + optional tracing target. */
class SimContext
{
  public:
    /** Untraced context: allocations succeed, accesses are free. */
    SimContext() = default;

    /** Traced context routing accesses into @p mem. */
    explicit SimContext(MemoryHierarchy *mem) : mem_(mem) {}

    uint64_t alloc(uint64_t bytes, uint64_t align = 64)
    {
        return space_.alloc(bytes, align);
    }

    MemoryHierarchy *mem() const { return mem_; }
    uint64_t residentBytes() const { return space_.residentBytes(); }

  private:
    SimAddressSpace space_;
    MemoryHierarchy *mem_ = nullptr;
};

} // namespace m4ps::memsim

#endif // M4PS_MEMSIM_ADDRESS_SPACE_HH
