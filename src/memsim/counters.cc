#include "memsim/counters.hh"

#include <sstream>

namespace m4ps::memsim
{

CounterSet &
CounterSet::operator+=(const CounterSet &o)
{
    gradLoads += o.gradLoads;
    gradStores += o.gradStores;
    l1Misses += o.l1Misses;
    l1Writebacks += o.l1Writebacks;
    l2Misses += o.l2Misses;
    l2Writebacks += o.l2Writebacks;
    prefetches += o.prefetches;
    prefetchL1Hits += o.prefetchL1Hits;
    prefetchFills += o.prefetchFills;
    computeCycles += o.computeCycles;
    stallL2Cycles += o.stallL2Cycles;
    stallDramCycles += o.stallDramCycles;
    return *this;
}

CounterSet &
CounterSet::operator-=(const CounterSet &o)
{
    gradLoads -= o.gradLoads;
    gradStores -= o.gradStores;
    l1Misses -= o.l1Misses;
    l1Writebacks -= o.l1Writebacks;
    l2Misses -= o.l2Misses;
    l2Writebacks -= o.l2Writebacks;
    prefetches -= o.prefetches;
    prefetchL1Hits -= o.prefetchL1Hits;
    prefetchFills -= o.prefetchFills;
    computeCycles -= o.computeCycles;
    stallL2Cycles -= o.stallL2Cycles;
    stallDramCycles -= o.stallDramCycles;
    return *this;
}

CounterSet
CounterSet::operator-(const CounterSet &o) const
{
    CounterSet r = *this;
    r -= o;
    return r;
}

bool
CounterSet::operator==(const CounterSet &o) const
{
    return gradLoads == o.gradLoads && gradStores == o.gradStores &&
           l1Misses == o.l1Misses && l1Writebacks == o.l1Writebacks &&
           l2Misses == o.l2Misses && l2Writebacks == o.l2Writebacks &&
           prefetches == o.prefetches &&
           prefetchL1Hits == o.prefetchL1Hits &&
           prefetchFills == o.prefetchFills &&
           computeCycles == o.computeCycles &&
           stallL2Cycles == o.stallL2Cycles &&
           stallDramCycles == o.stallDramCycles;
}

std::string
CounterSet::str() const
{
    std::ostringstream os;
    os << "graduated loads:  " << gradLoads << "\n"
       << "graduated stores: " << gradStores << "\n"
       << "L1D misses:       " << l1Misses << "\n"
       << "L1D writebacks:   " << l1Writebacks << "\n"
       << "L2D misses:       " << l2Misses << "\n"
       << "L2D writebacks:   " << l2Writebacks << "\n"
       << "prefetches:       " << prefetches
       << " (L1 hits: " << prefetchL1Hits << ")\n"
       << "compute cycles:   " << computeCycles << "\n"
       << "L2-stall cycles:  " << stallL2Cycles << "\n"
       << "DRAM-stall cycles:" << stallDramCycles << "\n";
    return os.str();
}

void
RegionProfiler::add(const std::string &region, const CounterSet &delta)
{
    buckets_[region] += delta;
}

CounterSet
RegionProfiler::get(const std::string &region) const
{
    auto it = buckets_.find(region);
    return it == buckets_.end() ? CounterSet{} : it->second;
}

bool
RegionProfiler::has(const std::string &region) const
{
    return buckets_.find(region) != buckets_.end();
}

} // namespace m4ps::memsim
