#include "memsim/counters.hh"

#include <sstream>

namespace m4ps::memsim
{

CounterSet &
CounterSet::operator+=(const CounterSet &o)
{
    gradLoads += o.gradLoads;
    gradStores += o.gradStores;
    l1Misses += o.l1Misses;
    l1Writebacks += o.l1Writebacks;
    l2Misses += o.l2Misses;
    l2Writebacks += o.l2Writebacks;
    prefetches += o.prefetches;
    prefetchL1Hits += o.prefetchL1Hits;
    prefetchFills += o.prefetchFills;
    computeCycles += o.computeCycles;
    stallL2Cycles += o.stallL2Cycles;
    stallDramCycles += o.stallDramCycles;
    return *this;
}

CounterSet &
CounterSet::operator-=(const CounterSet &o)
{
    gradLoads -= o.gradLoads;
    gradStores -= o.gradStores;
    l1Misses -= o.l1Misses;
    l1Writebacks -= o.l1Writebacks;
    l2Misses -= o.l2Misses;
    l2Writebacks -= o.l2Writebacks;
    prefetches -= o.prefetches;
    prefetchL1Hits -= o.prefetchL1Hits;
    prefetchFills -= o.prefetchFills;
    computeCycles -= o.computeCycles;
    stallL2Cycles -= o.stallL2Cycles;
    stallDramCycles -= o.stallDramCycles;
    return *this;
}

CounterSet
CounterSet::operator-(const CounterSet &o) const
{
    CounterSet r = *this;
    r -= o;
    return r;
}

bool
CounterSet::operator==(const CounterSet &o) const
{
    return gradLoads == o.gradLoads && gradStores == o.gradStores &&
           l1Misses == o.l1Misses && l1Writebacks == o.l1Writebacks &&
           l2Misses == o.l2Misses && l2Writebacks == o.l2Writebacks &&
           prefetches == o.prefetches &&
           prefetchL1Hits == o.prefetchL1Hits &&
           prefetchFills == o.prefetchFills &&
           computeCycles == o.computeCycles &&
           stallL2Cycles == o.stallL2Cycles &&
           stallDramCycles == o.stallDramCycles;
}

std::string
CounterSet::str() const
{
    std::ostringstream os;
    os << "graduated loads:  " << gradLoads << "\n"
       << "graduated stores: " << gradStores << "\n"
       << "L1D misses:       " << l1Misses << "\n"
       << "L1D writebacks:   " << l1Writebacks << "\n"
       << "L2D misses:       " << l2Misses << "\n"
       << "L2D writebacks:   " << l2Writebacks << "\n"
       << "prefetches:       " << prefetches
       << " (L1 hits: " << prefetchL1Hits << ")\n"
       << "compute cycles:   " << computeCycles << "\n"
       << "L2-stall cycles:  " << stallL2Cycles << "\n"
       << "DRAM-stall cycles:" << stallDramCycles << "\n";
    return os.str();
}

support::JsonValue
CounterSet::toJson() const
{
    using support::JsonValue;
    JsonValue v = JsonValue::makeObject();
    v.add("grad_loads", JsonValue::of(gradLoads));
    v.add("grad_stores", JsonValue::of(gradStores));
    v.add("l1_misses", JsonValue::of(l1Misses));
    v.add("l1_writebacks", JsonValue::of(l1Writebacks));
    v.add("l2_misses", JsonValue::of(l2Misses));
    v.add("l2_writebacks", JsonValue::of(l2Writebacks));
    v.add("prefetches", JsonValue::of(prefetches));
    v.add("prefetch_l1_hits", JsonValue::of(prefetchL1Hits));
    v.add("prefetch_fills", JsonValue::of(prefetchFills));
    v.add("compute_cycles", JsonValue::of(computeCycles));
    v.add("stall_l2_cycles", JsonValue::of(stallL2Cycles));
    v.add("stall_dram_cycles", JsonValue::of(stallDramCycles));
    return v;
}

CounterSet
CounterSet::fromJson(const support::JsonValue &v)
{
    CounterSet c;
    auto u64 = [&](const char *key) {
        return static_cast<uint64_t>(v.numberOr(key, 0.0));
    };
    c.gradLoads = u64("grad_loads");
    c.gradStores = u64("grad_stores");
    c.l1Misses = u64("l1_misses");
    c.l1Writebacks = u64("l1_writebacks");
    c.l2Misses = u64("l2_misses");
    c.l2Writebacks = u64("l2_writebacks");
    c.prefetches = u64("prefetches");
    c.prefetchL1Hits = u64("prefetch_l1_hits");
    c.prefetchFills = u64("prefetch_fills");
    c.computeCycles = v.numberOr("compute_cycles", 0.0);
    c.stallL2Cycles = v.numberOr("stall_l2_cycles", 0.0);
    c.stallDramCycles = v.numberOr("stall_dram_cycles", 0.0);
    return c;
}

void
RegionProfiler::add(const std::string &region, const CounterSet &delta)
{
    buckets_[region] += delta;
}

CounterSet
RegionProfiler::get(const std::string &region) const
{
    auto it = buckets_.find(region);
    return it == buckets_.end() ? CounterSet{} : it->second;
}

bool
RegionProfiler::has(const std::string &region) const
{
    return buckets_.find(region) != buckets_.end();
}

} // namespace m4ps::memsim
