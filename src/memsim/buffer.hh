/**
 * @file
 * SimBuffer<T>: real storage paired with a simulated address range.
 *
 * Element loads/stores both perform the real memory operation and,
 * when the owning SimContext is traced, emit the access to the
 * MemoryHierarchy.  Row operations coalesce cache-line probes for
 * speed while preserving graduated-access counts.
 */

#ifndef M4PS_MEMSIM_BUFFER_HH
#define M4PS_MEMSIM_BUFFER_HH

#include <cstddef>
#include <vector>

#include "memsim/address_space.hh"
#include "memsim/hierarchy.hh"
#include "support/logging.hh"

namespace m4ps::memsim
{

/** A typed array with a simulated base address. */
template <typename T>
class SimBuffer
{
  public:
    /** Empty buffer (no storage, no address). */
    SimBuffer() = default;

    /** Allocate @p n elements from @p ctx. */
    SimBuffer(SimContext &ctx, size_t n)
        : store_(n), base_(ctx.alloc(n * sizeof(T))), mem_(ctx.mem())
    {}

    SimBuffer(SimBuffer &&) noexcept = default;
    SimBuffer &operator=(SimBuffer &&) noexcept = default;
    SimBuffer(const SimBuffer &) = delete;
    SimBuffer &operator=(const SimBuffer &) = delete;

    size_t size() const { return store_.size(); }
    bool traced() const { return mem_ != nullptr; }

    /** Simulated address of element @p i. */
    uint64_t addrOf(size_t i) const { return base_ + i * sizeof(T); }

    /** Traced single-element load. */
    T
    load(size_t i) const
    {
        if (mem_)
            mem_->load(addrOf(i), sizeof(T));
        return store_[i];
    }

    /** Traced single-element store. */
    void
    store(size_t i, T v)
    {
        if (mem_)
            mem_->store(addrOf(i), sizeof(T));
        store_[i] = v;
    }

    /**
     * Trace @p n element loads starting at @p i as one coalesced row
     * access (the caller reads the data through raw()/data()).
     */
    void
    traceLoadRow(size_t i, size_t n) const
    {
        if (mem_ && n)
            mem_->loadRow(addrOf(i), n * sizeof(T), n);
    }

    /** Store counterpart of traceLoadRow(). */
    void
    traceStoreRow(size_t i, size_t n)
    {
        if (mem_ && n)
            mem_->storeRow(addrOf(i), n * sizeof(T), n);
    }

    /** Software prefetch of the line holding element @p i. */
    void
    prefetch(size_t i) const
    {
        if (mem_)
            mem_->prefetch(addrOf(i));
    }

    /** Untraced access (setup, verification, bulk init). */
    T &raw(size_t i) { return store_[i]; }
    const T &raw(size_t i) const { return store_[i]; }

    T *data() { return store_.data(); }
    const T *data() const { return store_.data(); }

    MemoryHierarchy *mem() const { return mem_; }

  private:
    std::vector<T> store_;
    uint64_t base_ = 0;
    MemoryHierarchy *mem_ = nullptr;
};

} // namespace m4ps::memsim

#endif // M4PS_MEMSIM_BUFFER_HH
