#include "memsim/address_space.hh"

#include "support/logging.hh"

namespace m4ps::memsim
{

uint64_t
SimAddressSpace::alloc(uint64_t bytes, uint64_t align)
{
    M4PS_ASSERT(align != 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two: ", align);
    top_ = (top_ + align - 1) & ~(align - 1);
    const uint64_t base = top_;
    top_ += bytes;
    return base;
}

} // namespace m4ps::memsim
