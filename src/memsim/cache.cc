#include "memsim/cache.hh"

#include <bit>
#include <sstream>

#include "support/logging.hh"

namespace m4ps::memsim
{

void
CacheConfig::validate() const
{
    M4PS_ASSERT(lineBytes > 0 && std::has_single_bit(
                    static_cast<uint64_t>(lineBytes)),
                "line size must be a power of two: ", lineBytes);
    M4PS_ASSERT(assoc > 0, "associativity must be positive");
    M4PS_ASSERT(sizeBytes % (static_cast<uint64_t>(lineBytes) * assoc) == 0,
                "size must be divisible by line*assoc");
    M4PS_ASSERT(std::has_single_bit(numSets()),
                "number of sets must be a power of two: ", numSets());
}

std::string
CacheConfig::str() const
{
    std::ostringstream os;
    if (sizeBytes >= 1024 * 1024 && sizeBytes % (1024 * 1024) == 0)
        os << sizeBytes / (1024 * 1024) << "MB";
    else
        os << sizeBytes / 1024 << "KB";
    os << " " << assoc << "-way " << lineBytes << "B lines";
    return os.str();
}

Cache::Cache(const CacheConfig &config) : config_(config)
{
    config_.validate();
    lineShift_ = std::countr_zero(
        static_cast<uint64_t>(config_.lineBytes));
    const uint64_t sets = config_.numSets();
    setShift_ = std::countr_zero(sets);
    setMask_ = sets - 1;
    ways_.resize(sets * config_.assoc);
}

AccessResult
Cache::touch(uint64_t addr, bool is_write, bool count_as_use)
{
    const uint64_t line = lineAddr(addr);
    const uint64_t set = setIndex(line);
    const uint64_t tag = tagOf(line);
    Way *base = &ways_[set * config_.assoc];
    ++tick_;

    // Hit path first: tag match over the set's ways.
    for (int w = 0; w < config_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            if (count_as_use)
                way.lastUse = tick_;
            way.dirty = way.dirty || is_write;
            return {true, false, 0};
        }
    }

    // Miss: fill an invalid way if one exists, else evict true LRU.
    Way *victim = nullptr;
    for (int w = 0; w < config_.assoc; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }

    AccessResult res;
    res.hit = false;
    if (victim->valid && victim->dirty) {
        res.evictedDirty = true;
        res.evictedAddr = ((victim->tag << setShift_) | set) << lineShift_;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lastUse = tick_;
    return res;
}

AccessResult
Cache::access(uint64_t addr, bool is_write)
{
    return touch(addr, is_write, true);
}

AccessResult
Cache::fill(uint64_t addr, bool is_write)
{
    // A prefetch fill installs the line but gives it LRU age as if
    // freshly used; hardware typically inserts prefetches at MRU.
    return touch(addr, is_write, true);
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t line = lineAddr(addr);
    const uint64_t set = setIndex(line);
    const uint64_t tag = tagOf(line);
    const Way *base = &ways_[set * config_.assoc];
    for (int w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    for (auto &w : ways_)
        w = Way{};
    tick_ = 0;
}

uint64_t
Cache::validLines() const
{
    uint64_t n = 0;
    for (const auto &w : ways_)
        n += w.valid ? 1 : 0;
    return n;
}

} // namespace m4ps::memsim
