/**
 * @file
 * Set-associative, write-back, write-allocate cache model.
 *
 * Stands in for the MIPS R10000/R12000 primary data cache (32 KB,
 * 2-way, 32-byte lines) and the board-level secondary cache (1/2/8 MB,
 * 2-way, 128-byte lines).  The model is trace-driven and stateful:
 * tags, per-line dirty bits, and true-LRU replacement per set.
 */

#ifndef M4PS_MEMSIM_CACHE_HH
#define M4PS_MEMSIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace m4ps::memsim
{

/** Geometry of one cache level. */
struct CacheConfig
{
    uint64_t sizeBytes = 32 * 1024;
    int assoc = 2;
    int lineBytes = 32;

    uint64_t numSets() const
    {
        return sizeBytes / (static_cast<uint64_t>(lineBytes) * assoc);
    }

    /** Validate the geometry (power-of-two line/sets, divisibility). */
    void validate() const;

    std::string str() const;
};

/** Outcome of a cache access. */
struct AccessResult
{
    bool hit = false;
    bool evictedDirty = false;      //!< A dirty victim was evicted.
    uint64_t evictedAddr = 0;       //!< Base address of the victim line.
};

/** One level of cache: tags + dirty bits + true LRU per set. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access @p addr; allocate the line on a miss (write-allocate).
     *
     * @param addr byte address.
     * @param is_write marks the line dirty.
     * @return hit/miss and victim information.
     */
    AccessResult access(uint64_t addr, bool is_write);

    /** True if the line containing @p addr is present (no state change). */
    bool probe(uint64_t addr) const;

    /**
     * Install the line containing @p addr without counting as a demand
     * access (used for prefetch fills).  Returns victim information;
     * hit is true when the line was already present.
     */
    AccessResult fill(uint64_t addr, bool is_write = false);

    /** Invalidate all lines (loses dirty data; for test setup only). */
    void reset();

    const CacheConfig &config() const { return config_; }

    /** Number of currently valid lines (for tests/inspection). */
    uint64_t validLines() const;

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint64_t lineAddr(uint64_t addr) const { return addr >> lineShift_; }
    uint64_t setIndex(uint64_t line) const { return line & setMask_; }
    uint64_t tagOf(uint64_t line) const { return line >> setShift_; }

    AccessResult touch(uint64_t addr, bool is_write, bool count_as_use);

    CacheConfig config_;
    int lineShift_;
    int setShift_;
    uint64_t setMask_;
    uint64_t tick_ = 0;
    std::vector<Way> ways_;      //!< sets * assoc, row-major by set.
};

} // namespace m4ps::memsim

#endif // M4PS_MEMSIM_CACHE_HH
