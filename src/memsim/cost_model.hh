/**
 * @file
 * Cycle/time cost model for the simulated machine.
 *
 * The paper measures wall-clock-derived quantities (stall-time
 * fractions, MB/s of bus traffic), so the trace-driven cache model
 * needs a notion of time.  The model is deliberately simple and
 * documented: compute cycles accrue per graduated memory access
 * (standing in for the surrounding ALU/issue work at a sustained
 * IPC), and each miss adds the *exposed* fraction of its service
 * latency - the fraction the out-of-order core and the MIPSpro
 * compiler fail to hide (paper §3.2, "Out-of-order issue and the
 * MIPS optimizing compiler hide another portion of the latency").
 */

#ifndef M4PS_MEMSIM_COST_MODEL_HH
#define M4PS_MEMSIM_COST_MODEL_HH

#include <string>

namespace m4ps::memsim
{

/** Latency, clock, and overlap parameters of the modelled CPU. */
struct CostModel
{
    /** Core clock in MHz (R12K O2/Onyx2 class: 300 MHz). */
    double clockMhz = 300.0;

    /**
     * Compute cycles charged per graduated load/store.  Loads and
     * stores are roughly 40% of the dynamic instruction mix of the
     * codec and the sustained IPC is near 1, so each access stands
     * for about 2.5 cycles of issue/ALU work.
     */
    double cyclesPerAccess = 2.5;

    /** L2 hit service latency in cycles. */
    double l2HitLatency = 12.0;

    /** DRAM service latency in cycles (beyond the L2 probe). */
    double dramLatency = 90.0;

    /** Fraction of L2-hit latency the core cannot hide. */
    double l2Exposure = 0.35;

    /** Fraction of DRAM latency the core cannot hide. */
    double dramExposure = 0.65;

    /** Seconds for a cycle count at this clock. */
    double seconds(double cycles) const
    {
        return cycles / (clockMhz * 1e6);
    }

    std::string str() const;
};

} // namespace m4ps::memsim

#endif // M4PS_MEMSIM_COST_MODEL_HH
