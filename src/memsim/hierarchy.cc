#include "memsim/hierarchy.hh"

#include <bit>

#include "support/logging.hh"

namespace m4ps::memsim
{

namespace
{

/** Recording target of the current thread (null = simulate now). */
thread_local TraceShard *tlsShard = nullptr;

} // namespace

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1,
                                 const CacheConfig &l2,
                                 const CostModel &cost)
    : l1_(l1), l2_(l2), cost_(cost),
      l1LineMask_(~static_cast<uint64_t>(l1.lineBytes - 1))
{
    M4PS_ASSERT(l2.lineBytes >= l1.lineBytes,
                "L2 line must not be smaller than L1 line");
}

void
MemoryHierarchy::bindShard(TraceShard *shard)
{
    tlsShard = shard;
}

TraceShard *
MemoryHierarchy::boundShard()
{
    return tlsShard;
}

void
MemoryHierarchy::writebackToL2(uint64_t addr)
{
    ++ctrs_.l1Writebacks;
    // Writebacks retire through write buffers: no stall, and a
    // writeback that misses L2 is not a demand miss.  Its own dirty
    // victim still produces DRAM traffic.
    AccessResult wb = l2_.access(addr, true);
    if (!wb.hit && wb.evictedDirty)
        ++ctrs_.l2Writebacks;
}

void
MemoryHierarchy::touchLine(uint64_t addr, bool is_write)
{
    AccessResult r1 = l1_.access(addr, is_write);
    if (r1.hit)
        return;

    ++ctrs_.l1Misses;
    ctrs_.stallL2Cycles += cost_.l2HitLatency * cost_.l2Exposure;

    AccessResult r2 = l2_.access(addr, false);
    if (!r2.hit) {
        ++ctrs_.l2Misses;
        ctrs_.stallDramCycles += cost_.dramLatency * cost_.dramExposure;
        if (r2.evictedDirty)
            ++ctrs_.l2Writebacks;
    }

    if (r1.evictedDirty)
        writebackToL2(r1.evictedAddr);
}

void
MemoryHierarchy::loadNow(uint64_t addr, int bytes)
{
    ++ctrs_.gradLoads;
    ctrs_.computeCycles += cost_.cyclesPerAccess;
    touchLine(addr, false);
    const uint64_t last = addr + bytes - 1;
    if ((last & l1LineMask_) != (addr & l1LineMask_))
        touchLine(last, false);
}

void
MemoryHierarchy::storeNow(uint64_t addr, int bytes)
{
    ++ctrs_.gradStores;
    ctrs_.computeCycles += cost_.cyclesPerAccess;
    touchLine(addr, true);
    const uint64_t last = addr + bytes - 1;
    if ((last & l1LineMask_) != (addr & l1LineMask_))
        touchLine(last, true);
}

void
MemoryHierarchy::loadRowNow(uint64_t addr, uint64_t bytes,
                            uint64_t elems)
{
    if (bytes == 0)
        return;
    ctrs_.gradLoads += elems;
    ctrs_.computeCycles += cost_.cyclesPerAccess * elems;
    const uint64_t line = l1_.config().lineBytes;
    const uint64_t end = addr + bytes;
    for (uint64_t a = addr & l1LineMask_; a < end; a += line)
        touchLine(a, false);
}

void
MemoryHierarchy::storeRowNow(uint64_t addr, uint64_t bytes,
                             uint64_t elems)
{
    if (bytes == 0)
        return;
    ctrs_.gradStores += elems;
    ctrs_.computeCycles += cost_.cyclesPerAccess * elems;
    const uint64_t line = l1_.config().lineBytes;
    const uint64_t end = addr + bytes;
    for (uint64_t a = addr & l1LineMask_; a < end; a += line)
        touchLine(a, true);
}

void
MemoryHierarchy::prefetchNow(uint64_t addr)
{
    ++ctrs_.prefetches;
    // A prefetch instruction still occupies an issue slot.
    ctrs_.computeCycles += 1.0;
    if (l1_.probe(addr)) {
        ++ctrs_.prefetchL1Hits;
        return;
    }
    ++ctrs_.prefetchFills;
    AccessResult r1 = l1_.fill(addr, false);
    AccessResult r2 = l2_.fill(addr, false);
    if (!r2.hit && r2.evictedDirty)
        ++ctrs_.l2Writebacks;
    if (r1.evictedDirty)
        writebackToL2(r1.evictedAddr);
}

void
MemoryHierarchy::load(uint64_t addr, int bytes)
{
    if (TraceShard *s = tlsShard) {
        s->ops_.push_back({addr, static_cast<uint32_t>(bytes),
                           (1u << 3) | TraceShard::kOpLoad});
        ++s->tallies_.gradLoads;
        s->tallies_.computeCycles += cost_.cyclesPerAccess;
        return;
    }
    loadNow(addr, bytes);
}

void
MemoryHierarchy::store(uint64_t addr, int bytes)
{
    if (TraceShard *s = tlsShard) {
        s->ops_.push_back({addr, static_cast<uint32_t>(bytes),
                           (1u << 3) | TraceShard::kOpStore});
        ++s->tallies_.gradStores;
        s->tallies_.computeCycles += cost_.cyclesPerAccess;
        return;
    }
    storeNow(addr, bytes);
}

void
MemoryHierarchy::loadRow(uint64_t addr, uint64_t bytes, uint64_t elems)
{
    if (TraceShard *s = tlsShard) {
        s->ops_.push_back(
            {addr, static_cast<uint32_t>(bytes),
             (static_cast<uint32_t>(elems) << 3) | TraceShard::kOpLoadRow});
        s->tallies_.gradLoads += elems;
        s->tallies_.computeCycles += cost_.cyclesPerAccess * elems;
        return;
    }
    loadRowNow(addr, bytes, elems);
}

void
MemoryHierarchy::storeRow(uint64_t addr, uint64_t bytes, uint64_t elems)
{
    if (TraceShard *s = tlsShard) {
        s->ops_.push_back(
            {addr, static_cast<uint32_t>(bytes),
             (static_cast<uint32_t>(elems) << 3) |
                 TraceShard::kOpStoreRow});
        s->tallies_.gradStores += elems;
        s->tallies_.computeCycles += cost_.cyclesPerAccess * elems;
        return;
    }
    storeRowNow(addr, bytes, elems);
}

void
MemoryHierarchy::prefetch(uint64_t addr)
{
    if (TraceShard *s = tlsShard) {
        s->ops_.push_back({addr, 0, (1u << 3) | TraceShard::kOpPrefetch});
        ++s->tallies_.prefetches;
        s->tallies_.computeCycles += 1.0;
        return;
    }
    prefetchNow(addr);
}

void
MemoryHierarchy::tick(double cycles)
{
    if (TraceShard *s = tlsShard) {
        s->ops_.push_back({std::bit_cast<uint64_t>(cycles), 0,
                           TraceShard::kOpTick});
        s->tallies_.computeCycles += cycles;
        return;
    }
    ctrs_.computeCycles += cycles;
}

std::string
MemoryHierarchy::counterArgsJson(const CounterSet &c)
{
    return "{\"gradLoads\":" + std::to_string(c.gradLoads) +
           ",\"gradStores\":" + std::to_string(c.gradStores) +
           ",\"l1Misses\":" + std::to_string(c.l1Misses) +
           ",\"l2Misses\":" + std::to_string(c.l2Misses) +
           ",\"l1Writebacks\":" + std::to_string(c.l1Writebacks) +
           ",\"l2Writebacks\":" + std::to_string(c.l2Writebacks) +
           ",\"prefetches\":" + std::to_string(c.prefetches) +
           ",\"computeCycles\":" +
           std::to_string(static_cast<uint64_t>(c.computeCycles)) +
           ",\"stallL2Cycles\":" +
           std::to_string(static_cast<uint64_t>(c.stallL2Cycles)) +
           ",\"stallDramCycles\":" +
           std::to_string(static_cast<uint64_t>(c.stallDramCycles)) +
           "}";
}

void
MemoryHierarchy::merge(TraceShard &shard)
{
    M4PS_ASSERT(tlsShard == nullptr,
                "merge() must run outside any recording region");
    obs::Span span("memsim", "memsim.merge");
    if (span.active())
        span.setArgs("{\"ops\":" + std::to_string(shard.ops_.size()) +
                     "}");
    const CounterSet before = span.active() ? ctrs_ : CounterSet{};
    for (const TraceShard::Op &op : shard.ops_) {
        const uint64_t elems = op.elemsKind >> 3;
        switch (op.elemsKind & 7u) {
          case TraceShard::kOpLoad:
            loadNow(op.addr, static_cast<int>(op.bytes));
            break;
          case TraceShard::kOpStore:
            storeNow(op.addr, static_cast<int>(op.bytes));
            break;
          case TraceShard::kOpLoadRow:
            loadRowNow(op.addr, op.bytes, elems);
            break;
          case TraceShard::kOpStoreRow:
            storeRowNow(op.addr, op.bytes, elems);
            break;
          case TraceShard::kOpPrefetch:
            prefetchNow(op.addr);
            break;
          case TraceShard::kOpTick:
            ctrs_.computeCycles += std::bit_cast<double>(op.addr);
            break;
        }
    }
    if (span.active()) {
        std::string args = counterArgsJson(ctrs_ - before);
        args.back() = ',';
        args += "\"ops\":" + std::to_string(shard.ops_.size()) + "}";
        span.setArgs(std::move(args));
    }
    shard.clear();
}

} // namespace m4ps::memsim
