#include "memsim/hierarchy.hh"

#include "support/logging.hh"

namespace m4ps::memsim
{

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1,
                                 const CacheConfig &l2,
                                 const CostModel &cost)
    : l1_(l1), l2_(l2), cost_(cost),
      l1LineMask_(~static_cast<uint64_t>(l1.lineBytes - 1))
{
    M4PS_ASSERT(l2.lineBytes >= l1.lineBytes,
                "L2 line must not be smaller than L1 line");
}

void
MemoryHierarchy::writebackToL2(uint64_t addr)
{
    ++ctrs_.l1Writebacks;
    // Writebacks retire through write buffers: no stall, and a
    // writeback that misses L2 is not a demand miss.  Its own dirty
    // victim still produces DRAM traffic.
    AccessResult wb = l2_.access(addr, true);
    if (!wb.hit && wb.evictedDirty)
        ++ctrs_.l2Writebacks;
}

void
MemoryHierarchy::touchLine(uint64_t addr, bool is_write)
{
    AccessResult r1 = l1_.access(addr, is_write);
    if (r1.hit)
        return;

    ++ctrs_.l1Misses;
    ctrs_.stallL2Cycles += cost_.l2HitLatency * cost_.l2Exposure;

    AccessResult r2 = l2_.access(addr, false);
    if (!r2.hit) {
        ++ctrs_.l2Misses;
        ctrs_.stallDramCycles += cost_.dramLatency * cost_.dramExposure;
        if (r2.evictedDirty)
            ++ctrs_.l2Writebacks;
    }

    if (r1.evictedDirty)
        writebackToL2(r1.evictedAddr);
}

void
MemoryHierarchy::load(uint64_t addr, int bytes)
{
    ++ctrs_.gradLoads;
    ctrs_.computeCycles += cost_.cyclesPerAccess;
    touchLine(addr, false);
    const uint64_t last = addr + bytes - 1;
    if ((last & l1LineMask_) != (addr & l1LineMask_))
        touchLine(last, false);
}

void
MemoryHierarchy::store(uint64_t addr, int bytes)
{
    ++ctrs_.gradStores;
    ctrs_.computeCycles += cost_.cyclesPerAccess;
    touchLine(addr, true);
    const uint64_t last = addr + bytes - 1;
    if ((last & l1LineMask_) != (addr & l1LineMask_))
        touchLine(last, true);
}

void
MemoryHierarchy::loadRow(uint64_t addr, uint64_t bytes, uint64_t elems)
{
    if (bytes == 0)
        return;
    ctrs_.gradLoads += elems;
    ctrs_.computeCycles += cost_.cyclesPerAccess * elems;
    const uint64_t line = l1_.config().lineBytes;
    const uint64_t end = addr + bytes;
    for (uint64_t a = addr & l1LineMask_; a < end; a += line)
        touchLine(a, false);
}

void
MemoryHierarchy::storeRow(uint64_t addr, uint64_t bytes, uint64_t elems)
{
    if (bytes == 0)
        return;
    ctrs_.gradStores += elems;
    ctrs_.computeCycles += cost_.cyclesPerAccess * elems;
    const uint64_t line = l1_.config().lineBytes;
    const uint64_t end = addr + bytes;
    for (uint64_t a = addr & l1LineMask_; a < end; a += line)
        touchLine(a, true);
}

void
MemoryHierarchy::prefetch(uint64_t addr)
{
    ++ctrs_.prefetches;
    // A prefetch instruction still occupies an issue slot.
    ctrs_.computeCycles += 1.0;
    if (l1_.probe(addr)) {
        ++ctrs_.prefetchL1Hits;
        return;
    }
    ++ctrs_.prefetchFills;
    AccessResult r1 = l1_.fill(addr, false);
    AccessResult r2 = l2_.fill(addr, false);
    if (!r2.hit && r2.evictedDirty)
        ++ctrs_.l2Writebacks;
    if (r1.evictedDirty)
        writebackToL2(r1.evictedAddr);
}

} // namespace m4ps::memsim
