#include "video/resample.hh"

#include "support/logging.hh"

namespace m4ps::video
{

void
downsample2x(const Plane &src, Plane &dst)
{
    // The destination may be larger than ceil(src/2): half-resolution
    // base layers are padded to macroblock multiples, and the padding
    // replicates the frame edge (clamped sampling).
    M4PS_ASSERT(dst.width() >= (src.width() + 1) / 2 &&
                dst.height() >= (src.height() + 1) / 2,
                "downsample2x: destination too small");
    for (int y = 0; y < dst.height(); ++y) {
        const int sy0 = std::min(2 * y, src.height() - 1);
        const int sy1 = std::min(2 * y + 1, src.height() - 1);
        src.traceLoadRow(0, sy0, src.width());
        src.traceLoadRow(0, sy1, src.width());
        const uint8_t *r0 = src.rowPtr(sy0);
        const uint8_t *r1 = src.rowPtr(sy1);
        uint8_t *d = dst.rowPtr(y);
        for (int x = 0; x < dst.width(); ++x) {
            const int sx0 = std::min(2 * x, src.width() - 1);
            const int sx1 = std::min(2 * x + 1, src.width() - 1);
            d[x] = static_cast<uint8_t>(
                (r0[sx0] + r0[sx1] + r1[sx0] + r1[sx1] + 2) >> 2);
        }
        dst.traceStoreRow(0, y, dst.width());
    }
}

void
upsample2x(const Plane &src, Plane &dst)
{
    M4PS_ASSERT(dst.width() == src.width() * 2 &&
                dst.height() == src.height() * 2,
                "upsample2x: bad destination size");
    for (int y = 0; y < dst.height(); ++y) {
        // Bilinear sample positions: dst pixel centre maps to
        // (y - 0.5) / 2 in source coordinates.
        const int sy = std::clamp((y - 1) / 2, 0, src.height() - 1);
        const int sy2 = std::clamp(sy + ((y & 1) ? 1 : 0),
                                   0, src.height() - 1);
        const int wy = (y & 1) ? 1 : 3; // weight of sy row out of 4
        src.traceLoadRow(0, sy, src.width());
        if (sy2 != sy)
            src.traceLoadRow(0, sy2, src.width());
        const uint8_t *r0 = src.rowPtr(sy);
        const uint8_t *r1 = src.rowPtr(sy2);
        uint8_t *d = dst.rowPtr(y);
        for (int x = 0; x < dst.width(); ++x) {
            const int sx = std::clamp((x - 1) / 2, 0, src.width() - 1);
            const int sx2 = std::clamp(sx + ((x & 1) ? 1 : 0),
                                       0, src.width() - 1);
            const int wx = (x & 1) ? 1 : 3;
            const int a = r0[sx] * wx + r0[sx2] * (4 - wx);
            const int b = r1[sx] * wx + r1[sx2] * (4 - wx);
            d[x] = static_cast<uint8_t>((a * wy + b * (4 - wy) + 8) >> 4);
        }
        dst.traceStoreRow(0, y, dst.width());
    }
}

void
downsampleFrame(const Yuv420Image &src, Yuv420Image &dst)
{
    downsample2x(src.y(), dst.y());
    downsample2x(src.u(), dst.u());
    downsample2x(src.v(), dst.v());
}

void
upsampleFrame(const Yuv420Image &src, Yuv420Image &dst)
{
    upsample2x(src.y(), dst.y());
    upsample2x(src.u(), dst.u());
    upsample2x(src.v(), dst.v());
}

void
downsampleAlpha(const Plane &src, Plane &dst)
{
    M4PS_ASSERT(dst.width() >= (src.width() + 1) / 2 &&
                dst.height() >= (src.height() + 1) / 2,
                "downsampleAlpha: destination too small");
    for (int y = 0; y < dst.height(); ++y) {
        const int sy0 = std::min(2 * y, src.height() - 1);
        const int sy1 = std::min(2 * y + 1, src.height() - 1);
        src.traceLoadRow(0, sy0, src.width());
        src.traceLoadRow(0, sy1, src.width());
        const uint8_t *r0 = src.rowPtr(sy0);
        const uint8_t *r1 = src.rowPtr(sy1);
        uint8_t *d = dst.rowPtr(y);
        for (int x = 0; x < dst.width(); ++x) {
            const int sx0 = std::min(2 * x, src.width() - 1);
            const int sx1 = std::min(2 * x + 1, src.width() - 1);
            // Conservative support: any opaque source pixel keeps the
            // downsampled pixel opaque.
            d[x] = (r0[sx0] | r0[sx1] | r1[sx0] | r1[sx1]) ? 255 : 0;
        }
        dst.traceStoreRow(0, y, dst.width());
    }
}

} // namespace m4ps::video
