#include "video/composite.hh"

#include "support/logging.hh"

namespace m4ps::video
{

void
compositeOver(Yuv420Image &dst, const Yuv420Image &src,
              const Plane *alpha)
{
    M4PS_ASSERT(dst.width() == src.width() &&
                dst.height() == src.height(),
                "compositeOver: size mismatch");
    if (!alpha) {
        dst.copyFrom(src);
        return;
    }
    M4PS_ASSERT(alpha->width() == src.width() &&
                alpha->height() == src.height(),
                "compositeOver: alpha size mismatch");
    for (int y = 0; y < src.height(); ++y) {
        const uint8_t *a = alpha->rowPtr(y);
        const uint8_t *s = src.y().rowPtr(y);
        uint8_t *d = dst.y().rowPtr(y);
        for (int x = 0; x < src.width(); ++x) {
            if (a[x])
                d[x] = s[x];
        }
    }
    for (int y = 0; y < src.height() / 2; ++y) {
        const uint8_t *a = alpha->rowPtr(2 * y);
        const uint8_t *su = src.u().rowPtr(y);
        const uint8_t *sv = src.v().rowPtr(y);
        uint8_t *du = dst.u().rowPtr(y);
        uint8_t *dv = dst.v().rowPtr(y);
        for (int x = 0; x < src.width() / 2; ++x) {
            if (a[2 * x]) {
                du[x] = su[x];
                dv[x] = sv[x];
            }
        }
    }
}

} // namespace m4ps::video
