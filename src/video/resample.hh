/**
 * @file
 * 2:1 resampling for spatially scalable video object layers.
 *
 * The base layer of a two-layer VOL codes the half-resolution frame;
 * the enhancement layer predicts from the upsampled base-layer
 * reconstruction.  Both directions are traced: resampling is real
 * codec work in the scalable profile.
 */

#ifndef M4PS_VIDEO_RESAMPLE_HH
#define M4PS_VIDEO_RESAMPLE_HH

#include "video/plane.hh"
#include "video/yuv.hh"

namespace m4ps::video
{

/** 2x2 box-filter downsample; dst must be ceil(src/2) sized. */
void downsample2x(const Plane &src, Plane &dst);

/** Bilinear 2x upsample; dst must be 2x the src size. */
void upsample2x(const Plane &src, Plane &dst);

/** Downsample all three planes of a 4:2:0 frame. */
void downsampleFrame(const Yuv420Image &src, Yuv420Image &dst);

/** Upsample all three planes of a 4:2:0 frame. */
void upsampleFrame(const Yuv420Image &src, Yuv420Image &dst);

/** Binary-alpha downsample (majority / any-set rule). */
void downsampleAlpha(const Plane &src, Plane &dst);

} // namespace m4ps::video

#endif // M4PS_VIDEO_RESAMPLE_HH
