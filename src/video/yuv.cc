#include "video/yuv.hh"

#include "support/logging.hh"

namespace m4ps::video
{

Yuv420Image::Yuv420Image(memsim::SimContext &ctx, int w, int h)
    : y_(ctx, w, h), u_(ctx, w / 2, h / 2), v_(ctx, w / 2, h / 2)
{
    M4PS_ASSERT(w > 0 && h > 0 && w % 2 == 0 && h % 2 == 0,
                "4:2:0 frames need positive even dimensions, got ",
                w, "x", h);
}

Plane &
Yuv420Image::plane(int i)
{
    switch (i) {
      case 0: return y_;
      case 1: return u_;
      case 2: return v_;
      default: M4PS_PANIC("bad plane index ", i);
    }
}

const Plane &
Yuv420Image::plane(int i) const
{
    return const_cast<Yuv420Image *>(this)->plane(i);
}

void
Yuv420Image::fill(uint8_t luma, uint8_t chroma)
{
    y_.fill(luma);
    u_.fill(chroma);
    v_.fill(chroma);
}

void
Yuv420Image::copyFrom(const Yuv420Image &src)
{
    y_.copyFrom(src.y());
    u_.copyFrom(src.u());
    v_.copyFrom(src.v());
}

} // namespace m4ps::video
