/**
 * @file
 * Deterministic synthetic video scenes.
 *
 * Stands in for the camera content the paper encodes (30-frame PAL /
 * XGA sequences): a textured background panning slowly plus textured
 * elliptical objects translating across the frame.  Motion is smooth
 * and bounded so motion estimation finds real matches; textures carry
 * enough detail that the DCT path does real work.
 *
 * The generator can render either the composited scene (the paper's
 * single-VO experiments) or each object separately with its binary
 * alpha plane (the 3-VO experiments, where "the single-object input
 * becomes a subset of the multiple-object input").
 */

#ifndef M4PS_VIDEO_SCENE_HH
#define M4PS_VIDEO_SCENE_HH

#include <cstdint>
#include <vector>

#include "video/yuv.hh"

namespace m4ps::video
{

/** One moving foreground object. */
struct ObjectSpec
{
    double cx = 0;          //!< Centre x at frame 0 (luma pixels).
    double cy = 0;          //!< Centre y at frame 0.
    double vx = 0;          //!< Velocity, pixels/frame.
    double vy = 0;
    double rx = 32;         //!< Ellipse radii.
    double ry = 24;
    uint32_t textureSeed = 1;
    uint8_t chromaU = 128;  //!< Flat object tint.
    uint8_t chromaV = 128;
};

/** Deterministic multi-object scene renderer. */
class SceneGenerator
{
  public:
    /**
     * Build a scene for @p w x @p h frames with @p num_objects
     * foreground objects derived from @p seed.
     */
    SceneGenerator(int w, int h, int num_objects, uint64_t seed = 7);

    int width() const { return w_; }
    int height() const { return h_; }
    int numObjects() const { return static_cast<int>(objects_.size()); }

    /**
     * Render the full composited frame at time @p t into @p out
     * (untraced writes; rendering models the capture path).
     */
    void renderFrame(int t, Yuv420Image &out) const;

    /**
     * Render foreground object @p obj at time @p t: pixels into
     * @p out, support into binary @p alpha (255 inside, 0 outside).
     * Pixels outside the object are set to mid-grey.
     */
    void renderObject(int t, int obj, Yuv420Image &out,
                      Plane &alpha) const;

    /**
     * Render the background (object index -1 semantics): the full
     * frame without foreground objects.
     */
    void renderBackground(int t, Yuv420Image &out) const;

    /** Object centre position at time @p t (bounces off borders). */
    void objectCenter(int t, int obj, double &cx, double &cy) const;

    /** Bounding box of object @p obj at time @p t, clipped to frame. */
    Rect objectBBox(int t, int obj) const;

    const ObjectSpec &object(int obj) const { return objects_[obj]; }

  private:
    uint8_t backgroundLuma(int t, int x, int y) const;
    uint8_t objectLuma(const ObjectSpec &o, int x, int y,
                       double cx, double cy) const;
    bool insideObject(const ObjectSpec &o, double cx, double cy,
                      int x, int y) const;

    int w_;
    int h_;
    uint64_t seed_;
    std::vector<ObjectSpec> objects_;
};

/** Deterministic value-noise texture sample in [0, 255]. */
uint8_t textureSample(uint32_t seed, int x, int y);

} // namespace m4ps::video

#endif // M4PS_VIDEO_SCENE_HH
