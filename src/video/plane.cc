#include "video/plane.hh"

#include <cstring>

#include "support/logging.hh"

namespace m4ps::video
{

void
Plane::fill(uint8_t v)
{
    if (!empty())
        std::memset(rowPtr(0), v, static_cast<size_t>(stride_) * h_);
}

void
Plane::copyFrom(const Plane &src)
{
    M4PS_ASSERT(src.w_ == w_ && src.h_ == h_,
                "copyFrom size mismatch: ", src.w_, "x", src.h_,
                " vs ", w_, "x", h_);
    for (int y = 0; y < h_; ++y)
        std::memcpy(rowPtr(y), src.rowPtr(y), static_cast<size_t>(w_));
}

} // namespace m4ps::video
