/**
 * @file
 * Objective quality metrics for codec verification.
 */

#ifndef M4PS_VIDEO_QUALITY_HH
#define M4PS_VIDEO_QUALITY_HH

#include "video/yuv.hh"

namespace m4ps::video
{

/** Mean squared error between two same-sized planes (untraced). */
double mse(const Plane &a, const Plane &b);

/** MSE restricted to pixels where @p mask is nonzero. */
double maskedMse(const Plane &a, const Plane &b, const Plane &mask);

/** Peak signal-to-noise ratio in dB (8-bit peak; inf-> 99.0). */
double psnr(const Plane &a, const Plane &b);

/** Luma PSNR of two frames. */
double psnrY(const Yuv420Image &a, const Yuv420Image &b);

/** Mean absolute difference between two planes. */
double meanAbsDiff(const Plane &a, const Plane &b);

} // namespace m4ps::video

#endif // M4PS_VIDEO_QUALITY_HH
