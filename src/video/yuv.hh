/**
 * @file
 * YUV 4:2:0 images: a luminance plane plus two half-resolution
 * chrominance planes, the pixel format of MPEG-4 main-profile video.
 */

#ifndef M4PS_VIDEO_YUV_HH
#define M4PS_VIDEO_YUV_HH

#include "video/plane.hh"

namespace m4ps::video
{

/** Planar YUV 4:2:0 frame. */
class Yuv420Image
{
  public:
    Yuv420Image() = default;

    /** Allocate a frame for even @p w x @p h luminance samples. */
    Yuv420Image(memsim::SimContext &ctx, int w, int h);

    int width() const { return y_.width(); }
    int height() const { return y_.height(); }
    bool empty() const { return y_.empty(); }

    Plane &y() { return y_; }
    Plane &u() { return u_; }
    Plane &v() { return v_; }
    const Plane &y() const { return y_; }
    const Plane &u() const { return u_; }
    const Plane &v() const { return v_; }

    /** Plane by index: 0 = Y, 1 = U, 2 = V. */
    Plane &plane(int i);
    const Plane &plane(int i) const;

    /** Untraced constant fill of all three planes. */
    void fill(uint8_t luma, uint8_t chroma);

    /** Untraced copy from a same-sized image. */
    void copyFrom(const Yuv420Image &src);

  private:
    Plane y_;
    Plane u_;
    Plane v_;
};

} // namespace m4ps::video

#endif // M4PS_VIDEO_YUV_HH
