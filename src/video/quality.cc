#include "video/quality.hh"

#include <cmath>

#include "support/logging.hh"

namespace m4ps::video
{

double
mse(const Plane &a, const Plane &b)
{
    M4PS_ASSERT(a.width() == b.width() && a.height() == b.height(),
                "mse: size mismatch");
    double acc = 0;
    for (int y = 0; y < a.height(); ++y) {
        const uint8_t *ra = a.rowPtr(y);
        const uint8_t *rb = b.rowPtr(y);
        for (int x = 0; x < a.width(); ++x) {
            const double d = static_cast<double>(ra[x]) - rb[x];
            acc += d * d;
        }
    }
    return acc / (static_cast<double>(a.width()) * a.height());
}

double
maskedMse(const Plane &a, const Plane &b, const Plane &mask)
{
    M4PS_ASSERT(a.width() == b.width() && a.height() == b.height() &&
                a.width() == mask.width() && a.height() == mask.height(),
                "maskedMse: size mismatch");
    double acc = 0;
    uint64_t n = 0;
    for (int y = 0; y < a.height(); ++y) {
        const uint8_t *ra = a.rowPtr(y);
        const uint8_t *rb = b.rowPtr(y);
        const uint8_t *rm = mask.rowPtr(y);
        for (int x = 0; x < a.width(); ++x) {
            if (rm[x]) {
                const double d = static_cast<double>(ra[x]) - rb[x];
                acc += d * d;
                ++n;
            }
        }
    }
    return n ? acc / static_cast<double>(n) : 0.0;
}

double
psnr(const Plane &a, const Plane &b)
{
    const double m = mse(a, b);
    if (m <= 1e-12)
        return 99.0;
    return 10.0 * std::log10(255.0 * 255.0 / m);
}

double
psnrY(const Yuv420Image &a, const Yuv420Image &b)
{
    return psnr(a.y(), b.y());
}

double
meanAbsDiff(const Plane &a, const Plane &b)
{
    M4PS_ASSERT(a.width() == b.width() && a.height() == b.height(),
                "meanAbsDiff: size mismatch");
    double acc = 0;
    for (int y = 0; y < a.height(); ++y) {
        const uint8_t *ra = a.rowPtr(y);
        const uint8_t *rb = b.rowPtr(y);
        for (int x = 0; x < a.width(); ++x)
            acc += std::abs(static_cast<int>(ra[x]) - rb[x]);
    }
    return acc / (static_cast<double>(a.width()) * a.height());
}

} // namespace m4ps::video
