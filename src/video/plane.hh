/**
 * @file
 * 2-D sample planes backed by simulated memory.
 *
 * A Plane is one component (luminance, chrominance, or alpha) stored
 * row-major with a padded stride, exactly like the reference codec's
 * frame stores.  Element accessors are traced; raw accessors exist
 * for content generation and verification, which stand for file I/O
 * rather than codec work.
 */

#ifndef M4PS_VIDEO_PLANE_HH
#define M4PS_VIDEO_PLANE_HH

#include <algorithm>
#include <cstdint>

#include "memsim/buffer.hh"

namespace m4ps::video
{

/** Integer rectangle (x, y, w, h). */
struct Rect
{
    int x = 0;
    int y = 0;
    int w = 0;
    int h = 0;

    bool contains(int px, int py) const
    {
        return px >= x && px < x + w && py >= y && py < y + h;
    }

    bool operator==(const Rect &o) const = default;
};

/** One 8-bit sample plane with simulated addressing. */
class Plane
{
  public:
    Plane() = default;

    /**
     * Allocate a @p w x @p h plane from @p ctx.  The stride adds a
     * 16-sample border and rounds to a multiple of 16, matching the
     * reference software's padded frame stores.  The border also
     * keeps power-of-two widths (1024) from aliasing rows onto the
     * same cache sets.
     */
    Plane(memsim::SimContext &ctx, int w, int h)
        : w_(w), h_(h), stride_((w + 16 + 15) & ~15),
          buf_(ctx, static_cast<size_t>(stride_) * h)
    {}

    int width() const { return w_; }
    int height() const { return h_; }
    int stride() const { return stride_; }
    bool empty() const { return w_ == 0 || h_ == 0; }

    /** Traced single-pixel load. */
    uint8_t loadPx(int x, int y) const { return buf_.load(index(x, y)); }

    /** Traced single-pixel store. */
    void storePx(int x, int y, uint8_t v) { buf_.store(index(x, y), v); }

    /** Trace @p n pixel loads along row @p y starting at @p x. */
    void
    traceLoadRow(int x, int y, int n) const
    {
        buf_.traceLoadRow(index(x, y), n);
    }

    /** Trace @p n pixel stores along row @p y starting at @p x. */
    void
    traceStoreRow(int x, int y, int n)
    {
        buf_.traceStoreRow(index(x, y), n);
    }

    /** Software prefetch of the line holding (@p x, @p y). */
    void prefetch(int x, int y) const { buf_.prefetch(index(x, y)); }

    /** Untraced accessors. */
    uint8_t rawAt(int x, int y) const { return buf_.raw(index(x, y)); }
    uint8_t &rawAt(int x, int y) { return buf_.raw(index(x, y)); }

    /** Untraced access clamped to the plane borders (edge padding). */
    uint8_t
    rawClamped(int x, int y) const
    {
        return rawAt(std::clamp(x, 0, w_ - 1), std::clamp(y, 0, h_ - 1));
    }

    const uint8_t *rowPtr(int y) const
    {
        return buf_.data() + static_cast<size_t>(y) * stride_;
    }

    uint8_t *rowPtr(int y)
    {
        return buf_.data() + static_cast<size_t>(y) * stride_;
    }

    /** Untraced constant fill. */
    void fill(uint8_t v);

    /** Untraced pixel copy from a same-sized plane. */
    void copyFrom(const Plane &src);

    memsim::MemoryHierarchy *mem() const { return buf_.mem(); }

  private:
    size_t
    index(int x, int y) const
    {
        return static_cast<size_t>(y) * stride_ + x;
    }

    int w_ = 0;
    int h_ = 0;
    int stride_ = 0;
    memsim::SimBuffer<uint8_t> buf_;
};

} // namespace m4ps::video

#endif // M4PS_VIDEO_PLANE_HH
