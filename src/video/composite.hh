/**
 * @file
 * Scene composition: paste decoded visual objects back into a frame.
 *
 * "At the reception site, powerful transformations may be performed
 * over each object to recompose the audiovisual scene" (paper §1).
 * This verification utility uses raw (untraced) accesses so it never
 * perturbs a measurement; the paper's decoder statistics cover VOP
 * decoding, not the player.
 */

#ifndef M4PS_VIDEO_COMPOSITE_HH
#define M4PS_VIDEO_COMPOSITE_HH

#include "video/yuv.hh"

namespace m4ps::video
{

/**
 * Composite @p src over @p dst.  With a null @p alpha the source
 * replaces the destination wholesale (background VO); otherwise only
 * pixels whose alpha is set are pasted (chroma uses the alpha of the
 * top-left covered luma sample).
 */
void compositeOver(Yuv420Image &dst, const Yuv420Image &src,
                   const Plane *alpha);

} // namespace m4ps::video

#endif // M4PS_VIDEO_COMPOSITE_HH
