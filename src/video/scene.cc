#include "video/scene.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/random.hh"

namespace m4ps::video
{

namespace
{

/** 2-D integer hash -> [0, 255]. */
uint32_t
hash2(uint32_t seed, int x, int y)
{
    uint32_t h = seed;
    h ^= static_cast<uint32_t>(x) * 0x85ebca6bu;
    h = (h << 13) | (h >> 19);
    h ^= static_cast<uint32_t>(y) * 0xc2b2ae35u;
    h *= 0x27d4eb2fu;
    h ^= h >> 15;
    return h;
}

} // namespace

uint8_t
textureSample(uint32_t seed, int x, int y)
{
    // Value noise: hash lattice points every 8 pixels, bilinear blend.
    const int cell = 8;
    const int x0 = x >> 3, y0 = y >> 3;
    const int fx = x & (cell - 1), fy = y & (cell - 1);
    const double tx = fx / static_cast<double>(cell);
    const double ty = fy / static_cast<double>(cell);
    auto corner = [&](int cx, int cy) {
        return static_cast<double>(hash2(seed, cx, cy) & 0xff);
    };
    const double top = corner(x0, y0) * (1 - tx) + corner(x0 + 1, y0) * tx;
    const double bot = corner(x0, y0 + 1) * (1 - tx) +
                       corner(x0 + 1, y0 + 1) * tx;
    const double v = top * (1 - ty) + bot * ty;
    // Add a fine-grain deterministic dither so blocks are not flat.
    const double grain = ((hash2(seed ^ 0xabcd, x, y) & 0x1f) - 15.5) * 0.4;
    const double out = v * 0.75 + 32 + grain;
    return static_cast<uint8_t>(std::clamp(out, 0.0, 255.0));
}

SceneGenerator::SceneGenerator(int w, int h, int num_objects,
                               uint64_t seed)
    : w_(w), h_(h), seed_(seed)
{
    M4PS_ASSERT(w > 0 && h > 0, "bad scene size ", w, "x", h);
    M4PS_ASSERT(num_objects >= 0 && num_objects <= 16,
                "unsupported object count ", num_objects);
    Rng rng(seed);
    for (int i = 0; i < num_objects; ++i) {
        ObjectSpec o;
        o.rx = w * rng.uniformReal(0.06, 0.12);
        o.ry = h * rng.uniformReal(0.08, 0.16);
        o.cx = rng.uniformReal(o.rx + 8, w - o.rx - 8);
        o.cy = rng.uniformReal(o.ry + 8, h - o.ry - 8);
        // A few pixels per frame: realistic inter-frame motion.
        o.vx = rng.uniformReal(1.0, 4.0) * (rng.chance(0.5) ? 1 : -1);
        o.vy = rng.uniformReal(0.5, 3.0) * (rng.chance(0.5) ? 1 : -1);
        o.textureSeed = static_cast<uint32_t>(rng.next());
        o.chromaU = static_cast<uint8_t>(rng.uniformInt(64, 192));
        o.chromaV = static_cast<uint8_t>(rng.uniformInt(64, 192));
        objects_.push_back(o);
    }
}

void
SceneGenerator::objectCenter(int t, int obj, double &cx, double &cy) const
{
    const ObjectSpec &o = objects_[obj];
    // Advance with elastic reflection off the frame borders.
    auto bounce = [](double p, double v, double t_, double lo, double hi) {
        const double span = hi - lo;
        if (span <= 0)
            return lo;
        double q = std::fmod(p - lo + v * t_, 2 * span);
        if (q < 0)
            q += 2 * span;
        return lo + (q <= span ? q : 2 * span - q);
    };
    cx = bounce(o.cx, o.vx, t, o.rx, w_ - o.rx);
    cy = bounce(o.cy, o.vy, t, o.ry, h_ - o.ry);
}

uint8_t
SceneGenerator::backgroundLuma(int t, int x, int y) const
{
    // Slow horizontal pan (half a pixel per frame) over a large
    // texture plus a gentle vertical gradient.
    const int px = x + t / 2;
    const uint8_t tex = textureSample(static_cast<uint32_t>(seed_), px, y);
    const int grad = (y * 48) / std::max(h_, 1);
    const int v = tex / 2 + 64 + grad;
    return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

bool
SceneGenerator::insideObject(const ObjectSpec &o, double cx, double cy,
                             int x, int y) const
{
    const double dx = (x - cx) / o.rx;
    const double dy = (y - cy) / o.ry;
    return dx * dx + dy * dy <= 1.0;
}

uint8_t
SceneGenerator::objectLuma(const ObjectSpec &o, int x, int y,
                           double cx, double cy) const
{
    // Texture moves with the object so motion estimation can track it.
    const int tx = static_cast<int>(std::lround(x - cx)) + 4096;
    const int ty = static_cast<int>(std::lround(y - cy)) + 4096;
    return textureSample(o.textureSeed, tx, ty);
}

void
SceneGenerator::renderBackground(int t, Yuv420Image &out) const
{
    M4PS_ASSERT(out.width() == w_ && out.height() == h_,
                "frame size mismatch");
    for (int y = 0; y < h_; ++y) {
        uint8_t *row = out.y().rowPtr(y);
        for (int x = 0; x < w_; ++x)
            row[x] = backgroundLuma(t, x, y);
    }
    for (int y = 0; y < h_ / 2; ++y) {
        uint8_t *ru = out.u().rowPtr(y);
        uint8_t *rv = out.v().rowPtr(y);
        for (int x = 0; x < w_ / 2; ++x) {
            // Mild chroma texture derived from luma lattice.
            ru[x] = static_cast<uint8_t>(
                120 + (textureSample(static_cast<uint32_t>(seed_) ^ 0x11,
                                     x + t / 4, y) >> 4));
            rv[x] = static_cast<uint8_t>(
                124 + (textureSample(static_cast<uint32_t>(seed_) ^ 0x22,
                                     x, y) >> 4));
        }
    }
}

void
SceneGenerator::renderFrame(int t, Yuv420Image &out) const
{
    renderBackground(t, out);
    for (size_t i = 0; i < objects_.size(); ++i) {
        const ObjectSpec &o = objects_[i];
        double cx, cy;
        objectCenter(t, static_cast<int>(i), cx, cy);
        const Rect bb = objectBBox(t, static_cast<int>(i));
        for (int y = bb.y; y < bb.y + bb.h; ++y) {
            uint8_t *row = out.y().rowPtr(y);
            for (int x = bb.x; x < bb.x + bb.w; ++x) {
                if (insideObject(o, cx, cy, x, y))
                    row[x] = objectLuma(o, x, y, cx, cy);
            }
        }
        for (int y = bb.y / 2; y < (bb.y + bb.h) / 2; ++y) {
            uint8_t *ru = out.u().rowPtr(y);
            uint8_t *rv = out.v().rowPtr(y);
            for (int x = bb.x / 2; x < (bb.x + bb.w) / 2; ++x) {
                if (insideObject(o, cx / 2, cy / 2, x, y) ||
                    insideObject(o, cx, cy, 2 * x, 2 * y)) {
                    ru[x] = o.chromaU;
                    rv[x] = o.chromaV;
                }
            }
        }
    }
}

void
SceneGenerator::renderObject(int t, int obj, Yuv420Image &out,
                             Plane &alpha) const
{
    M4PS_ASSERT(obj >= 0 && obj < numObjects(), "bad object ", obj);
    M4PS_ASSERT(out.width() == w_ && out.height() == h_,
                "frame size mismatch");
    M4PS_ASSERT(alpha.width() == w_ && alpha.height() == h_,
                "alpha size mismatch");
    const ObjectSpec &o = objects_[obj];
    double cx, cy;
    objectCenter(t, obj, cx, cy);

    out.fill(128, 128);
    alpha.fill(0);

    const Rect bb = objectBBox(t, obj);
    for (int y = bb.y; y < bb.y + bb.h; ++y) {
        uint8_t *row = out.y().rowPtr(y);
        uint8_t *arow = alpha.rowPtr(y);
        for (int x = bb.x; x < bb.x + bb.w; ++x) {
            if (insideObject(o, cx, cy, x, y)) {
                row[x] = objectLuma(o, x, y, cx, cy);
                arow[x] = 255;
            }
        }
    }
    for (int y = bb.y / 2; y < (bb.y + bb.h) / 2; ++y) {
        uint8_t *ru = out.u().rowPtr(y);
        uint8_t *rv = out.v().rowPtr(y);
        for (int x = bb.x / 2; x < (bb.x + bb.w) / 2; ++x) {
            if (insideObject(o, cx / 2, cy / 2, x, y) ||
                insideObject(o, cx, cy, 2 * x, 2 * y)) {
                ru[x] = o.chromaU;
                rv[x] = o.chromaV;
            }
        }
    }
}

Rect
SceneGenerator::objectBBox(int t, int obj) const
{
    const ObjectSpec &o = objects_[obj];
    double cx, cy;
    objectCenter(t, obj, cx, cy);
    int x0 = static_cast<int>(std::floor(cx - o.rx)) - 1;
    int y0 = static_cast<int>(std::floor(cy - o.ry)) - 1;
    int x1 = static_cast<int>(std::ceil(cx + o.rx)) + 1;
    int y1 = static_cast<int>(std::ceil(cy + o.ry)) + 1;
    x0 = std::max(x0, 0);
    y0 = std::max(y0, 0);
    x1 = std::min(x1, w_);
    y1 = std::min(y1, h_);
    return {x0, y0, std::max(x1 - x0, 0), std::max(y1 - y0, 0)};
}

} // namespace m4ps::video
