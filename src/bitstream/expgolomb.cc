#include "bitstream/expgolomb.hh"

#include <bit>

#include "support/logging.hh"

namespace m4ps::bits
{

void
putUe(BitWriter &bw, uint32_t value)
{
    M4PS_ASSERT(value < 0xffffffffu, "ue value too large");
    const uint64_t v = static_cast<uint64_t>(value) + 1;
    const int bits = 64 - std::countl_zero(v); // position of leading 1
    bw.putBits(0, bits - 1);                   // prefix zeros
    bw.putBits(static_cast<uint32_t>(v), bits);
}

uint32_t
getUe(BitReader &br)
{
    int zeros = 0;
    while (!br.getBit()) {
        // putUe() caps values below 2^32-1, so a legal prefix has at
        // most 31 zeros; 32 would also make the shift below undefined.
        if (++zeros >= 32 || br.overrun())
            return 0; // corrupt stream; caller checks overrun()
    }
    uint32_t suffix = zeros ? br.getBits(zeros) : 0;
    return ((1u << zeros) | suffix) - 1;
}

void
putSe(BitWriter &bw, int32_t value)
{
    // Map 0, 1, -1, 2, -2, ... to 0, 1, 2, 3, 4, ...
    const uint32_t mapped = value > 0
        ? static_cast<uint32_t>(value) * 2 - 1
        : static_cast<uint32_t>(-static_cast<int64_t>(value)) * 2;
    putUe(bw, mapped);
}

int32_t
getSe(BitReader &br)
{
    const uint32_t mapped = getUe(br);
    if (mapped & 1)
        return static_cast<int32_t>((mapped + 1) / 2);
    return -static_cast<int32_t>(mapped / 2);
}

int
ueLength(uint32_t value)
{
    const uint64_t v = static_cast<uint64_t>(value) + 1;
    const int bits = 64 - std::countl_zero(v);
    return 2 * bits - 1;
}

} // namespace m4ps::bits
