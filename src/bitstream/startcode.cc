#include "bitstream/startcode.hh"

#include "support/logging.hh"

namespace m4ps::bits
{

void
putStartCode(BitWriter &bw, uint8_t code)
{
    if (!bw.aligned())
        bw.byteAlignStuffing();
    bw.putBits(0x000001u, 24);
    bw.putBits(code, 8);
}

void
putVoStartCode(BitWriter &bw, int vo_id)
{
    M4PS_ASSERT(vo_id >= 0 && vo_id < 32, "vo_id out of range: ", vo_id);
    putStartCode(bw, static_cast<uint8_t>(
        static_cast<uint8_t>(StartCode::VisualObject) + vo_id));
}

void
putVolStartCode(BitWriter &bw, int vol_id)
{
    M4PS_ASSERT(vol_id >= 0 && vol_id < 16, "vol_id out of range: ", vol_id);
    putStartCode(bw, static_cast<uint8_t>(
        static_cast<uint8_t>(StartCode::VideoObjectLayer) + vol_id));
}

std::optional<uint8_t>
nextStartCode(BitReader &br)
{
    br.byteAlign();
    // Scan byte-aligned 24-bit windows for the 0x000001 prefix.
    while (br.bitsLeft() >= 32) {
        if (br.peekBits(24) == 0x000001u) {
            br.getBits(24);
            return static_cast<uint8_t>(br.getBits(8));
        }
        br.getBits(8);
    }
    return std::nullopt;
}

bool
isVoCode(uint8_t code)
{
    return code < 0x20;
}

bool
isVolCode(uint8_t code)
{
    return code >= 0x20 && code < 0x30;
}

bool
isVopCode(uint8_t code)
{
    return code == static_cast<uint8_t>(StartCode::Vop) ||
           code == static_cast<uint8_t>(StartCode::VopResilient);
}

void
putResyncMarker(BitWriter &bw)
{
    if (!bw.aligned())
        bw.byteAlignStuffing();
    bw.putBits(kResyncMarker, 24);
}

void
putMotionMarker(BitWriter &bw)
{
    if (!bw.aligned())
        bw.byteAlignStuffing();
    bw.putBits(kMotionMarker, 24);
}

PacketScan
nextPacketBoundary(BitReader &br)
{
    br.byteAlign();
    while (br.bitsLeft() >= 24) {
        const uint32_t window = br.peekBits(24);
        if (window == 0x000001u)
            return PacketScan::StartCode;
        if (window == kResyncMarker) {
            br.getBits(24);
            return PacketScan::Resync;
        }
        br.getBits(8);
    }
    return PacketScan::End;
}

} // namespace m4ps::bits
