/**
 * @file
 * MSB-first bit-level I/O over a byte buffer.
 *
 * The codec emits an MPEG-4-style bitstream: bit-packed headers and
 * entropy-coded payload delimited by byte-aligned 32-bit startcodes.
 * BitWriter/BitReader provide the bit-level substrate; startcode
 * handling lives in startcode.hh.
 */

#ifndef M4PS_BITSTREAM_BITSTREAM_HH
#define M4PS_BITSTREAM_BITSTREAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace m4ps::support
{
class StateWriter;
class StateReader;
} // namespace m4ps::support

namespace m4ps::bits
{

/** Accumulates bits MSB-first into a growable byte buffer. */
class BitWriter
{
  public:
    BitWriter() = default;

    /** Append the low @p count bits of @p value (MSB of the field first). */
    void putBits(uint32_t value, int count);

    /** Append a single bit. */
    void putBit(bool b) { putBits(b ? 1 : 0, 1); }

    /** Pad with zero bits to the next byte boundary (no-op if aligned). */
    void byteAlign();

    /**
     * Append every bit written to @p other so far, preserving the
     * exact bit sequence regardless of either writer's alignment.
     * Used to merge independently produced sub-streams (per-row
     * slice payloads) into the master stream deterministically.
     */
    void append(const BitWriter &other);

    /** Pad to byte boundary with a 1 bit then zero bits (MPEG style). */
    void byteAlignStuffing();

    /** Total number of bits written so far. */
    uint64_t bitCount() const { return bitCount_; }

    /** True when the write position is byte aligned. */
    bool aligned() const { return (bitCount_ % 8) == 0; }

    /** Finish (align) and return the byte buffer. */
    std::vector<uint8_t> take();

    /** Read-only view of the bytes written so far (excludes partial byte). */
    const std::vector<uint8_t> &bytes() const { return buf_; }

    /**
     * Checkpoint support: capture / restore the exact writer state,
     * including any partial byte, so an interrupted producer can
     * continue and emit a bit-identical stream.
     */
    void saveState(support::StateWriter &sw) const;
    void restoreState(support::StateReader &sr);

  private:
    std::vector<uint8_t> buf_;
    uint32_t acc_ = 0;   //!< Bits not yet flushed, left-aligned in 8.
    int accBits_ = 0;    //!< Number of valid bits in acc_.
    uint64_t bitCount_ = 0;
};

/** Reads bits MSB-first from a byte buffer. */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size)
        : data_(data), size_(size) {}

    explicit BitReader(const std::vector<uint8_t> &buf)
        : BitReader(buf.data(), buf.size()) {}

    /** Read @p count bits (<= 32) as an unsigned value. */
    uint32_t getBits(int count);

    /** Read one bit. */
    bool getBit() { return getBits(1) != 0; }

    /** Peek @p count bits (<= 24) without consuming; zero-padded at EOF. */
    uint32_t peekBits(int count) const;

    /** Skip forward to the next byte boundary. */
    void byteAlign();

    /** Bit position from the start of the buffer. */
    uint64_t bitPos() const { return bitPos_; }

    /** Move to an absolute bit position. */
    void seekBits(uint64_t bit_pos);

    /** True when all bits have been consumed. */
    bool exhausted() const { return bitPos_ >= size_ * 8; }

    /** Bits remaining. */
    uint64_t bitsLeft() const
    {
        const uint64_t total = size_ * 8;
        return bitPos_ >= total ? 0 : total - bitPos_;
    }

    /** True if a read past the end has occurred. */
    bool overrun() const { return overrun_; }

  private:
    const uint8_t *data_;
    size_t size_;
    uint64_t bitPos_ = 0;
    bool overrun_ = false;
};

} // namespace m4ps::bits

#endif // M4PS_BITSTREAM_BITSTREAM_HH
