#include "bitstream/bitstream.hh"

#include "support/logging.hh"
#include "support/serialize.hh"

namespace m4ps::bits
{

void
BitWriter::putBits(uint32_t value, int count)
{
    M4PS_ASSERT(count >= 0 && count <= 32, "bad bit count ", count);
    if (count < 32)
        value &= (1u << count) - 1;
    bitCount_ += count;
    while (count > 0) {
        const int take = std::min(count, 8 - accBits_);
        const uint32_t chunk = (value >> (count - take)) &
                               ((1u << take) - 1);
        acc_ = (acc_ << take) | chunk;
        accBits_ += take;
        count -= take;
        if (accBits_ == 8) {
            buf_.push_back(static_cast<uint8_t>(acc_));
            acc_ = 0;
            accBits_ = 0;
        }
    }
}

void
BitWriter::byteAlign()
{
    if (accBits_ > 0)
        putBits(0, 8 - accBits_);
}

void
BitWriter::byteAlignStuffing()
{
    // MPEG-4 next_start_code(): a '0' bit then '1' bits to alignment.
    // We use the simpler 1-then-0s convention, which is self-delimiting
    // for our decoder as well.
    putBit(true);
    byteAlign();
}

void
BitWriter::append(const BitWriter &other)
{
    M4PS_ASSERT(&other != this, "cannot append a writer to itself");
    for (uint8_t byte : other.buf_)
        putBits(byte, 8);
    if (other.accBits_ > 0)
        putBits(other.acc_, other.accBits_);
}

std::vector<uint8_t>
BitWriter::take()
{
    byteAlign();
    return std::move(buf_);
}

void
BitWriter::saveState(support::StateWriter &sw) const
{
    sw.bytes(buf_.data(), buf_.size());
    sw.u32(acc_);
    sw.i32(accBits_);
    sw.u64(bitCount_);
}

void
BitWriter::restoreState(support::StateReader &sr)
{
    sr.bytes(buf_);
    acc_ = sr.u32();
    accBits_ = sr.i32();
    bitCount_ = sr.u64();
    if (accBits_ < 0 || accBits_ > 7 ||
        bitCount_ != buf_.size() * 8 + static_cast<uint64_t>(accBits_))
        throw support::SerializeError("inconsistent BitWriter state");
}

uint32_t
BitReader::getBits(int count)
{
    M4PS_ASSERT(count >= 0 && count <= 32, "bad bit count ", count);
    uint32_t v = 0;
    for (int i = 0; i < count; ++i) {
        const uint64_t byte = bitPos_ >> 3;
        if (byte >= size_) {
            // Reading past the end yields zero bits and sets the
            // overrun flag; callers decide whether that is an error.
            overrun_ = true;
            v <<= 1;
        } else {
            const int shift = 7 - static_cast<int>(bitPos_ & 7);
            v = (v << 1) | ((data_[byte] >> shift) & 1u);
        }
        ++bitPos_;
    }
    return v;
}

uint32_t
BitReader::peekBits(int count) const
{
    M4PS_ASSERT(count >= 0 && count <= 24, "bad peek count ", count);
    uint32_t v = 0;
    uint64_t pos = bitPos_;
    for (int i = 0; i < count; ++i, ++pos) {
        const uint64_t byte = pos >> 3;
        if (byte >= size_) {
            v <<= 1;
        } else {
            const int shift = 7 - static_cast<int>(pos & 7);
            v = (v << 1) | ((data_[byte] >> shift) & 1u);
        }
    }
    return v;
}

void
BitReader::byteAlign()
{
    bitPos_ = (bitPos_ + 7) & ~7ull;
}

void
BitReader::seekBits(uint64_t bit_pos)
{
    M4PS_ASSERT(bit_pos <= size_ * 8, "seek past end");
    bitPos_ = bit_pos;
    overrun_ = false;
}

} // namespace m4ps::bits
