/**
 * @file
 * Exponential-Golomb entropy codes.
 *
 * The reproduction substitutes Exp-Golomb codes for the MPEG-4 fixed
 * Huffman (VLC) tables: same prefix-free, short-code-for-small-value
 * structure, no 100-entry tables to transcribe.  This changes the
 * compressed size slightly but not the pixel pipeline's memory
 * behaviour, which is what the paper measures (see DESIGN.md §5).
 */

#ifndef M4PS_BITSTREAM_EXPGOLOMB_HH
#define M4PS_BITSTREAM_EXPGOLOMB_HH

#include <cstdint>

#include "bitstream/bitstream.hh"

namespace m4ps::bits
{

/** Write an unsigned Exp-Golomb code (order 0). */
void putUe(BitWriter &bw, uint32_t value);

/** Read an unsigned Exp-Golomb code (order 0). */
uint32_t getUe(BitReader &br);

/** Write a signed Exp-Golomb code (zigzag-mapped). */
void putSe(BitWriter &bw, int32_t value);

/** Read a signed Exp-Golomb code (zigzag-mapped). */
int32_t getSe(BitReader &br);

/** Length in bits of the unsigned code for @p value. */
int ueLength(uint32_t value);

} // namespace m4ps::bits

#endif // M4PS_BITSTREAM_EXPGOLOMB_HH
