/**
 * @file
 * MPEG-4 style startcodes.
 *
 * The decoder "reads a stream of bits looking for the unique bit
 * patterns called startcodes that mark the divisions between different
 * sections of data" (paper §2.1).  We use the standard 0x000001xx
 * byte-aligned startcode prefix with MPEG-4 Part-2 code values for
 * visual objects, video object layers, and VOPs.
 */

#ifndef M4PS_BITSTREAM_STARTCODE_HH
#define M4PS_BITSTREAM_STARTCODE_HH

#include <cstdint>
#include <optional>

#include "bitstream/bitstream.hh"

namespace m4ps::bits
{

/** Startcode values (the last byte of the 0x000001xx pattern). */
enum class StartCode : uint8_t
{
    // MPEG-4 Part 2 uses ranges for VO (0x00..0x1f) and VOL
    // (0x20..0x2f) ids; we encode the id in the low bits likewise.
    VisualObject = 0x00,        //!< 0x00 + vo_id (0..31)
    VideoObjectLayer = 0x20,    //!< 0x20 + vol_id (0..15)
    VisualObjectSequence = 0xb0,
    VisualObjectSequenceEnd = 0xb1,
    Vop = 0xb6,
    /**
     * Error-resilient VOP: same header as Vop plus a data-
     * partitioning flag, with the texture rows carried in video
     * packets behind byte-aligned resync markers (docs/RESILIENCE.md).
     */
    VopResilient = 0xb7,
};

/**
 * Byte-aligned in-VOP markers.  They deliberately do not share the
 * 0x000001 startcode prefix, so a scan for the next *section* skips
 * straight over them while a scan for the next *packet* can stop at
 * either.
 */
constexpr uint32_t kResyncMarker = 0x000002u; //!< Video packet start.
constexpr uint32_t kMotionMarker = 0x000003u; //!< Motion|texture split.

/** Write a byte-aligned startcode (aligns the writer first). */
void putStartCode(BitWriter &bw, uint8_t code);

/** Write a VO startcode carrying @p vo_id (0..31). */
void putVoStartCode(BitWriter &bw, int vo_id);

/** Write a VOL startcode carrying @p vol_id (0..15). */
void putVolStartCode(BitWriter &bw, int vol_id);

/**
 * Scan forward from the reader's position for the next startcode.
 *
 * Leaves the reader positioned just after the code byte and returns
 * the code byte, or std::nullopt at end of stream.
 */
std::optional<uint8_t> nextStartCode(BitReader &br);

/** True if @p code marks a visual object header. */
bool isVoCode(uint8_t code);

/** True if @p code marks a video object layer header. */
bool isVolCode(uint8_t code);

/** True if @p code marks a VOP (plain or resilient). */
bool isVopCode(uint8_t code);

/** Write a byte-aligned resync marker (stuffs to alignment first). */
void putResyncMarker(BitWriter &bw);

/** Write a byte-aligned motion marker (stuffs to alignment first). */
void putMotionMarker(BitWriter &bw);

/** What a packet-boundary scan stopped at. */
enum class PacketScan
{
    Resync,    //!< Found (and consumed) a resync marker.
    StartCode, //!< Stopped just before a 0x000001 startcode prefix.
    End,       //!< Ran out of stream.
};

/**
 * Scan byte-aligned from the reader's position for the next packet
 * boundary: a resync marker (consumed) or a startcode prefix (left
 * unconsumed so section-level scanning can take over).
 */
PacketScan nextPacketBoundary(BitReader &br);

} // namespace m4ps::bits

#endif // M4PS_BITSTREAM_STARTCODE_HH
